package experiments

import (
	"bytes"
	"strings"
	"testing"

	"zombie/internal/corpus"
)

// tiny is the smallest configuration the harness accepts; every workload
// floors at 400 inputs.
var tiny = Config{Scale: 0.01, Seed: 99}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if n := (Config{Scale: 0.001}).n(20000); n != 400 {
		t.Fatalf("scale floor wrong: %d", n)
	}
	if n := (Config{Scale: 0.5}).n(20000); n != 10000 {
		t.Fatalf("scaling wrong: %d", n)
	}
}

func TestWorkloadsBuild(t *testing.T) {
	wls, err := AllWorkloads(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 3 {
		t.Fatalf("workloads = %d", len(wls))
	}
	names := map[string]bool{}
	for _, wl := range wls {
		names[wl.Task.Name] = true
		if wl.Store.Len() < 400 {
			t.Fatalf("%s: store too small: %d", wl.Task.Name, wl.Store.Len())
		}
		if wl.DefaultK <= 0 || wl.QualityTarget <= 0 {
			t.Fatalf("%s: defaults unset", wl.Task.Name)
		}
		groups, err := wl.Groups(8, 1)
		if err != nil {
			t.Fatalf("%s: groups: %v", wl.Task.Name, err)
		}
		if err := groups.Validate(); err != nil {
			t.Fatalf("%s: %v", wl.Task.Name, err)
		}
	}
	for _, want := range []string{"wiki", "songs", "image"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a, err := WikiWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WikiWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.Len() != b.Store.Len() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.Store.Len(); i++ {
		if a.Store.Get(i).Text != b.Store.Get(i).Text {
			t.Fatalf("corpus differs at %d", i)
		}
	}
	for i := range a.Task.PoolIdx {
		if a.Task.PoolIdx[i] != b.Task.PoolIdx[i] {
			t.Fatal("pool split differs")
		}
	}
}

func TestCompareToTargetReachesTarget(t *testing.T) {
	wl, err := ImageWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := wl.Groups(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compareToTarget(wl, groups, "eps-greedy:0.1", wl.QualityTarget, 101, nil)
	if err != nil {
		t.Fatal(err)
	}
	// By construction the target is a fraction of the worse final, so both
	// runs reach it.
	if !c.ScanReached || !c.ZombieReached {
		t.Fatalf("target unreached: scan=%v zombie=%v target=%v scanFinal=%v zombieFinal=%v",
			c.ScanReached, c.ZombieReached, c.Target, c.Scan.FinalQuality, c.Zombie.FinalQuality)
	}
	if c.SpeedupInputs() <= 0 || c.SpeedupSim() <= 0 {
		t.Fatalf("speedups not positive: %v %v", c.SpeedupInputs(), c.SpeedupSim())
	}
}

func TestCompareMedianOrdering(t *testing.T) {
	wl, err := ImageWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := wl.Groups(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compareMedian(wl, groups, "eps-greedy:0.1", wl.QualityTarget, 102, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || !c.ScanReached {
		t.Fatal("median comparison empty")
	}
}

func TestRunStrategyUnknown(t *testing.T) {
	wl, err := SongWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	groups, _ := wl.Groups(4, 1)
	if _, err := runStrategy(wl, groups, "nope", "random", 1, nil); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

func TestBuildNamedGroupsAll(t *testing.T) {
	wl, err := WikiWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"default", "kmeans-text", "kmeans-tfidf", "attribute:category", "hash", "random", "oracle"} {
		g, err := buildNamedGroups(wl, strat, 6, 7, 1)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
	if _, err := buildNamedGroups(wl, "bogus", 6, 7, 1); err == nil {
		t.Fatal("unknown strategy should fail")
	}
	// kmeans-numeric over a text corpus fails.
	if _, err := buildNamedGroups(wl, "kmeans-numeric", 6, 7, 1); err == nil {
		t.Fatal("kmeans-numeric over text should fail")
	}
	img, err := ImageWorkload(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildNamedGroups(img, "kmeans-numeric", 6, 7, 1); err != nil {
		t.Fatalf("kmeans-numeric over images: %v", err)
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	ids := IDs()
	want := []string{"B1", "C1", "D1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "S1", "T1", "T2", "T3", "T4"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
		if Title(ids[i]) == "" {
			t.Fatalf("%s has no title", ids[i])
		}
	}
	if err := Run("nope", tiny, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestT1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("T1", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== T1", "wiki", "songs", "image", "useful%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("T1 output missing %q:\n%s", want, out)
		}
	}
}

func TestT2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("T2", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "wiki") {
		t.Fatalf("T2 output malformed:\n%s", out)
	}
	// Every task row renders numbers, not n/a (targets are reachable by
	// construction).
	if strings.Contains(out, "n/a") {
		t.Fatalf("T2 contains n/a rows:\n%s", out)
	}
}

func TestF2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F2", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, k := range []string{"1", "2", "4", "8"} {
		if !strings.Contains(out, "\n"+k+" ") {
			t.Fatalf("F2 missing k=%s row:\n%s", k, out)
		}
	}
}

func TestF5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F5", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "disabled") || !strings.Contains(out, "saved%") {
		t.Fatalf("F5 output malformed:\n%s", out)
	}
}

func TestF1SeriesOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F1", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"wiki/zombie", "wiki/scan-random", "image/oracle", "series,x,y"} {
		if !strings.Contains(out, s) {
			t.Fatalf("F1 missing series %q", s)
		}
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	// Slow-ish but exhaustive: every registry entry must execute end to
	// end at the floor scale without error, producing its banner.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, tiny, &buf); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !strings.Contains(buf.String(), "=== "+id) {
				t.Fatalf("%s: banner missing:\n%s", id, buf.String())
			}
		})
	}
}

func TestT3SessionShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("T3", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wiki-v1", "wiki-v8", "session speedup", "scan session total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("T3 missing %q:\n%s", want, out)
		}
	}
}

func TestC1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("C1", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== C1", "cold", "warm", "cwiki-v1", "cwiki-v4",
		"warm curves identical to cold: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("C1 output missing %q:\n%s", want, out)
		}
	}
	// The warm pass replays a fully populated cache: zero misses.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "warm pass:") && !strings.Contains(line, "/ 0 misses") {
			t.Fatalf("C1 warm pass should have zero misses: %q", line)
		}
	}
}

// TestS1Output runs the warm-vs-cold session experiment. The experiment
// asserts its own claim internally (positive total inputs saved across
// independent corpus draws, unless the scale is degenerate), so a clean
// return is the main check; the table shape is pinned on top.
func TestS1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("S1", Config{Scale: 0.05, Seed: 5}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== S1", "cold-to-target", "warm-to-target", "seeded-pulls",
		"total inputs saved by the warm start", "median inputs to re-reach v1 plateau", "extraction cache"} {
		if !strings.Contains(out, want) {
			t.Fatalf("S1 output missing %q:\n%s", want, out)
		}
	}
}

func TestF6ListsAllStrategies(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F6", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kmeans-text", "kmeans-tfidf", "attribute:category", "hash", "random", "oracle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("F6 missing %q", want)
		}
	}
}

func TestF7ListsAllAgingVariants(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("F7", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cumulative", "window-500", "window-50", "discount-0.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("F7 missing %q", want)
		}
	}
}

func TestTableAddRowPanicsOnWidthMismatch(t *testing.T) {
	tb := &Table{ID: "X", Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableFprint(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"col", "val"}}
	tb.AddRow("a", "1")
	tb.Notes = append(tb.Notes, "a note")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== X: demo ===") || !strings.Contains(out, "note: a note") {
		t.Fatalf("table render wrong:\n%s", out)
	}
}

func TestUsefulFractionBands(t *testing.T) {
	for _, tc := range []struct {
		build  func(Config) (*Workload, error)
		lo, hi float64
	}{
		{WikiWorkload, 0.01, 0.15},
		{SongWorkload, 0.05, 0.35},
		{ImageWorkload, 0.005, 0.08},
	} {
		wl, err := tc.build(Config{Scale: 0.05, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := usefulFraction(wl)
		if got < tc.lo || got > tc.hi {
			t.Fatalf("%s: useful fraction %v outside [%v, %v]", wl.Task.Name, got, tc.lo, tc.hi)
		}
		_ = corpus.ComputeStats(wl.Store)
	}
}

// TestParallelOutputByteIdentical is the harness's determinism contract:
// cfg.Parallel is a wall-clock knob only, so T2 (tables) and F1 (series)
// must render byte-for-byte identically however many workers run.
func TestParallelOutputByteIdentical(t *testing.T) {
	for _, id := range []string{"T2", "F1"} {
		var seq, par bytes.Buffer
		if err := Run(id, tiny, &seq); err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		cfg := tiny
		cfg.Parallel = 8
		if err := Run(id, cfg, &par); err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if seq.String() != par.String() {
			t.Fatalf("%s differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq.String(), par.String())
		}
	}
}
