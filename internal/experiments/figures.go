package experiments

import (
	"fmt"
	"io"
	"sort"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/parallel"
	"zombie/internal/trace"
)

// F1LearningCurves reproduces the learning-curve figure: holdout quality
// vs inputs processed for Zombie, the random scan, the sequential scan,
// and the oracle skyline, per task. Series print in long-form CSV.
func F1LearningCurves(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workloads, err := AllWorkloads(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "=== F1: Learning curves (quality vs inputs processed) ==="); err != nil {
		return err
	}
	strategies := []string{"zombie", "scan-random", "scan-sequential", "oracle"}
	// Every (workload, strategy) run is independent; fan them all out and
	// emit the series in the original nested order.
	perWorkload, err := parallel.MapErr(cfg.Parallel, len(workloads), func(i int) ([]*trace.Series, error) {
		wl := workloads[i]
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		return parallel.MapErr(cfg.Parallel, len(strategies), func(j int) (*trace.Series, error) {
			res, err := runStrategy(wl, groups, strategies[j], "eps-greedy:0.1", cfg.Seed+2, nil)
			if err != nil {
				return nil, err
			}
			s := &trace.Series{Name: wl.Task.Name + "/" + strategies[j]}
			for _, p := range downsampleCurve(res.Curve, 40) {
				s.AddPoint(float64(p.Inputs), p.Quality)
			}
			return s, nil
		})
	})
	if err != nil {
		return err
	}
	for _, series := range perWorkload {
		if err := trace.WriteSeriesCSV(w, series...); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w)
	return err
}

// downsampleCurve keeps at most n evenly spaced points (always including
// the first and last).
func downsampleCurve(curve []core.CurvePoint, n int) []core.CurvePoint {
	if len(curve) <= n || n < 2 {
		return curve
	}
	out := make([]core.CurvePoint, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, curve[i*(len(curve)-1)/(n-1)])
	}
	return append(out, curve[len(curve)-1])
}

// F2GroupCount reproduces the index-granularity figure: speedup versus the
// number of index groups k on the wiki task. k=1 degenerates to an
// unordered scan; very large k starves per-arm statistics.
func F2GroupCount(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F2",
		Title:  "Speedup vs number of index groups (wiki task)",
		Header: []string{"k", "zombie-inputs", "scan-inputs", "speedup", "useful-rate"},
	}
	var ks []int
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		if k <= len(wl.Task.PoolIdx) {
			ks = append(ks, k)
		}
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(ks), func(i int) ([]string, error) {
		k := ks[i]
		groups, err := wl.Groups(k, cfg.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		c, err := compareMedian(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, 3, cfg.Parallel, nil)
		if err != nil {
			return nil, err
		}
		if !c.ScanReached || !c.ZombieReached {
			return []string{d(k), "n/a", "n/a", "n/a", f(c.Zombie.UsefulRate())}, nil
		}
		return []string{d(k), d(c.ZombieInputs), d(c.ScanInputs), spd(c.SpeedupInputs()), f(c.Zombie.UsefulRate())}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"median of 3 trials per k",
		"expected shape: speedup rises with k then flattens; k=1 ~= scan")
	return table.Fprint(w)
}

// F3Policies reproduces the bandit-policy comparison on the image task:
// inputs to target and useful inputs found at a fixed budget, per policy.
func F3Policies(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := ImageWorkload(cfg)
	if err != nil {
		return err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F3",
		Title:  "Bandit policy comparison (image task)",
		Header: []string{"policy", "inputs-to-target", "speedup-vs-scan", "useful-rate", "final-q"},
	}
	// One shared scan reference; every policy row depends on it, so it
	// must complete before the fan-out.
	ref, err := compareToTarget(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, nil)
	if err != nil {
		return err
	}
	specs := []bandit.Spec{
		"greedy", "eps-greedy:0.05", "eps-greedy:0.1", "eps-greedy:0.2",
		"eps-decay:0.5:0.01", "ucb1:1", "thompson", "softmax:0.1",
		"exp3:0.1", "round-robin", "random",
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(specs), func(i int) ([]string, error) {
		res, err := runStrategy(wl, groups, "zombie", specs[i], cfg.Seed+2, nil)
		if err != nil {
			return nil, err
		}
		inputs, _, reached := res.InputsToQuality(ref.Target)
		speedup := "n/a"
		inputsCell := "n/a"
		if reached && ref.ScanReached && inputs > 0 {
			speedup = spd(float64(ref.ScanInputs) / float64(inputs))
			inputsCell = d(inputs)
		}
		return []string{string(specs[i]), inputsCell, speedup, f(res.UsefulRate()), f(res.FinalQuality)}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.AddRow("scan-random (baseline)", d(ref.ScanInputs), "1.00x", f(ref.Scan.UsefulRate()), f(ref.Scan.FinalQuality))
	table.Notes = append(table.Notes,
		"expected shape: eps-greedy / ucb1 / thompson cluster together ahead of round-robin and random")
	return table.Fprint(w)
}

// F4Rewards reproduces the reward-function ablation: usefulness vs
// quality-delta vs hybrid, per task.
func F4Rewards(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workloads, err := AllWorkloads(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F4",
		Title:  "Reward-function ablation",
		Header: []string{"task", "reward", "inputs-to-target", "speedup-vs-scan", "useful-rate"},
	}
	rewards := []core.RewardKind{core.RewardUsefulness, core.RewardQualityDelta, core.RewardHybrid}
	perWorkload, err := parallel.MapErr(cfg.Parallel, len(workloads), func(i int) ([][]string, error) {
		wl := workloads[i]
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		ref, err := compareToTarget(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, nil)
		if err != nil {
			return nil, err
		}
		return parallel.MapErr(cfg.Parallel, len(rewards), func(j int) ([]string, error) {
			reward := rewards[j]
			res, err := runStrategy(wl, groups, "zombie", "eps-greedy:0.1", cfg.Seed+2, func(c *core.Config) {
				c.Reward = reward
				c.RewardSubsample = 40
			})
			if err != nil {
				return nil, err
			}
			inputs, _, reached := res.InputsToQuality(ref.Target)
			cell, speed := "n/a", "n/a"
			if reached && ref.ScanReached && inputs > 0 {
				cell = d(inputs)
				speed = spd(float64(ref.ScanInputs) / float64(inputs))
			}
			return []string{wl.Task.Name, reward.String(), cell, speed, f(res.UsefulRate())}, nil
		})
	})
	if err != nil {
		return err
	}
	for _, rows := range perWorkload {
		for _, row := range rows {
			table.AddRow(row...)
		}
	}
	table.Notes = append(table.Notes,
		"quality-delta pays per-step holdout-subsample evaluations; usefulness is the cheap default")
	return table.Fprint(w)
}

// F5EarlyStop reproduces the early-stopping figure: inputs saved vs
// quality lost across plateau slope thresholds, wiki task.
func F5EarlyStop(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	full, err := runStrategy(wl, groups, "zombie", "eps-greedy:0.1", cfg.Seed+2, nil)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F5",
		Title:  "Early stopping: inputs saved vs quality lost (wiki task)",
		Header: []string{"slope-threshold", "inputs", "saved%", "quality", "quality-loss", "stop"},
	}
	table.AddRow("disabled", d(full.InputsProcessed), "0.0%", f(full.FinalQuality), "0.000", full.Stop.String())
	thresholds := []float64{0.0005, 0.001, 0.002, 0.004, 0.008}
	rows, err := parallel.MapErr(cfg.Parallel, len(thresholds), func(i int) ([]string, error) {
		th := thresholds[i]
		res, err := runStrategy(wl, groups, "zombie", "eps-greedy:0.1", cfg.Seed+2, func(c *core.Config) {
			c.EarlyStop = core.EarlyStopConfig{
				Enabled:        true,
				Window:         8,
				SlopeThreshold: th,
				Patience:       2,
				MinInputs:      200,
			}
		})
		if err != nil {
			return nil, err
		}
		saved := 100 * (1 - float64(res.InputsProcessed)/float64(full.InputsProcessed))
		return []string{
			fmt.Sprintf("%.4f", th),
			d(res.InputsProcessed),
			fmt.Sprintf("%.1f%%", saved),
			f(res.FinalQuality),
			f(full.FinalQuality - res.FinalQuality),
			res.Stop.String(),
		}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"expected shape: mild thresholds save most of the corpus at <1-2% quality loss")
	return table.Fprint(w)
}

// F6Indexing reproduces the indexing-strategy ablation on the wiki task:
// informative clustering vs attribute bucketing vs uninformative
// partitions vs the ground-truth oracle grouping.
func F6Indexing(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F6",
		Title:  "Indexing-strategy ablation (wiki task)",
		Header: []string{"index", "inputs-to-target", "speedup-vs-scan", "useful-rate"},
	}
	groupsDefault, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	ref, err := compareMedian(wl, groupsDefault, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, 3, cfg.Parallel, nil)
	if err != nil {
		return err
	}
	strats := []string{"kmeans-text", "kmeans-tfidf", "lsh-text", "attribute:category", "hash", "random", "oracle"}
	rows, err := parallel.MapErr(cfg.Parallel, len(strats), func(i int) ([]string, error) {
		strat := strats[i]
		groups, err := buildNamedGroups(wl, strat, wl.DefaultK, cfg.Seed+1, cfg.Parallel)
		if err != nil {
			return nil, err
		}
		// Median of 3 trials per strategy: time-to-quality crossings are
		// noisy near flat curve regions. The last trial's useful-rate is
		// reported, matching the sequential loop.
		type trial struct {
			inputs int
			rate   float64
		}
		trials, err := parallel.MapErr(cfg.Parallel, 3, func(t int) (trial, error) {
			res, err := runStrategy(wl, groups, "zombie", "eps-greedy:0.1", cfg.Seed+2+int64(1000*t), nil)
			if err != nil {
				return trial{}, err
			}
			inputs, _, reached := res.InputsToQuality(ref.Target)
			if !reached {
				inputs = res.InputsProcessed // cap at the full pool
			}
			return trial{inputs: inputs, rate: res.UsefulRate()}, nil
		})
		if err != nil {
			return nil, err
		}
		inputsTrials := []int{trials[0].inputs, trials[1].inputs, trials[2].inputs}
		rate := trials[2].rate
		sort.Ints(inputsTrials)
		inputs := inputsTrials[1]
		cell, speed := "n/a", "n/a"
		if ref.ScanReached && inputs > 0 {
			cell = d(inputs)
			speed = spd(float64(ref.ScanInputs) / float64(inputs))
		}
		return []string{strat, cell, speed, f(rate)}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.AddRow("scan-random (baseline)", d(ref.ScanInputs), "1.00x", f(ref.Scan.UsefulRate()))
	table.Notes = append(table.Notes,
		"median of 3 trials per strategy",
		"hash/random are uninformative partitions: the bandit cannot beat the scan there",
		"oracle groups purely by ground-truth usefulness; a useful-first stream is NOT optimal for F1 (class balance matters), so it can trail content-based indexes")
	return table.Fprint(w)
}

// F7Nonstationary reproduces the nonstationarity ablation: cumulative vs
// sliding-window vs discounted arm statistics on the image task. Arm
// payoffs drift as rich groups deplete, so forgetting helps.
func F7Nonstationary(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := ImageWorkload(cfg)
	if err != nil {
		return err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	ref, err := compareToTarget(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, nil)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "F7",
		Title:  "Arm-statistics aging ablation (image task)",
		Header: []string{"arm-stats", "inputs-to-target", "speedup-vs-scan", "useful-rate", "final-q"},
	}
	variants := []struct {
		name   string
		policy bandit.Spec
		cfg    bandit.StatsConfig
	}{
		{"cumulative", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Cumulative}},
		{"window-500", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Windowed, Window: 500}},
		{"window-200", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Windowed, Window: 200}},
		{"window-50", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Windowed, Window: 50}},
		{"discount-0.99", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Discounted, Gamma: 0.99}},
		{"discount-0.9", "eps-greedy:0.1", bandit.StatsConfig{Kind: bandit.Discounted, Gamma: 0.9}},
		// Policy-level forgetting: the nonstationary-bandit literature's
		// answers, compared against estimator-level aging above.
		{"sw-ucb-200", "sw-ucb:200:1", bandit.StatsConfig{}},
		{"d-ucb-0.99", "d-ucb:0.99:1", bandit.StatsConfig{}},
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(variants), func(i int) ([]string, error) {
		v := variants[i]
		res, err := runStrategy(wl, groups, "zombie", v.policy, cfg.Seed+2, func(c *core.Config) {
			c.PolicyStats = v.cfg
		})
		if err != nil {
			return nil, err
		}
		inputs, _, reached := res.InputsToQuality(ref.Target)
		cell, speed := "n/a", "n/a"
		if reached && ref.ScanReached && inputs > 0 {
			cell = d(inputs)
			speed = spd(float64(ref.ScanInputs) / float64(inputs))
		}
		return []string{v.name, cell, speed, f(res.UsefulRate()), f(res.FinalQuality)}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"groups deplete as the run progresses, so an arm's payoff is nonstationary by construction")
	return table.Fprint(w)
}
