package experiments

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"zombie/internal/runstore"
)

// DurabilityBenchEntry is the durable-control-plane block zombie-bench
// writes to its JSON report: what one journaled lifecycle transition
// costs on the submit path (append latency) and how long a restarted
// process spends replaying the journal back into memory (recovery wall
// time). CI diffs it between commits so a durability regression names
// itself instead of hiding inside total server latency.
type DurabilityBenchEntry struct {
	Records     int `json:"records"`
	RecordBytes int `json:"record_bytes"`
	// AppendMicros is the mean latency of one journal append, the cost a
	// run submission or progress tick pays before the caller continues.
	AppendMicros float64 `json:"append_us"`
	JournalBytes int64   `json:"journal_bytes"`
	// SnapshotMillis times one snapshot write + journal reset over the
	// fully accumulated journal.
	SnapshotMillis float64 `json:"snapshot_ms"`
	// RecoveryMillis times a cold Open over the accumulated journal — the
	// startup tax a crashed server pays before it can serve again.
	RecoveryMillis   float64 `json:"recovery_ms"`
	RecoveredRecords int     `json:"recovered_records"`
}

// DurabilityBench measures the write-ahead journal under a synthetic
// run-lifecycle load: records sized like the server's summary entries,
// appended one at a time the way lifecycle transitions arrive, then
// recovered by a cold re-open. The record count scales with cfg.Scale so
// the full bench and the CI smoke exercise the same code at different
// depths.
func DurabilityBench(cfg Config) (*DurabilityBenchEntry, error) {
	cfg = cfg.withDefaults()
	records := int(20000 * cfg.Scale)
	if records < 1000 {
		records = 1000
	}
	// A run-summary journal entry (spec + state + counters as JSON) lands
	// around a quarter KiB; the payload content itself is irrelevant to
	// the I/O path being timed.
	const recordBytes = 256
	dir, err := os.MkdirTemp("", "zombie-durability-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	store, err := runstore.Open(dir, nil, nil)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, recordBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < records; i++ {
		binary.LittleEndian.PutUint64(payload, uint64(i))
		if err := store.Append(payload); err != nil {
			store.Close() //nolint:errcheck
			return nil, err
		}
	}
	appendWall := time.Since(start)
	journalBytes := store.JournalBytes()
	if err := store.Close(); err != nil {
		return nil, err
	}

	// Cold recovery: re-open the directory and replay every record, the
	// exact path a restarted zombie-serve walks before listening.
	replayed := 0
	start = time.Now()
	store, err = runstore.Open(dir, nil, func([]byte) error {
		replayed++
		return nil
	})
	if err != nil {
		return nil, err
	}
	recoveryWall := time.Since(start)
	if replayed != records {
		store.Close() //nolint:errcheck
		return nil, fmt.Errorf("experiments: durability bench replayed %d of %d records", replayed, records)
	}

	// Snapshot over the full journal: the compaction a long-lived server
	// runs periodically and on graceful shutdown.
	start = time.Now()
	if err := store.Snapshot(payload); err != nil {
		store.Close() //nolint:errcheck
		return nil, err
	}
	snapshotWall := time.Since(start)
	if err := store.Close(); err != nil {
		return nil, err
	}

	return &DurabilityBenchEntry{
		Records:          records,
		RecordBytes:      recordBytes,
		AppendMicros:     appendWall.Seconds() * 1e6 / float64(records),
		JournalBytes:     journalBytes,
		SnapshotMillis:   snapshotWall.Seconds() * 1e3,
		RecoveryMillis:   recoveryWall.Seconds() * 1e3,
		RecoveredRecords: replayed,
	}, nil
}
