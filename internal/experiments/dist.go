package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"

	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/dist"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

// D1ShardInvariance is the distributed determinism check as an
// experiment: the standard wiki task run single-process and then sharded
// over 1, 2, and 4 in-process dist workers, asserting the quality curve
// and run summary are byte-identical at every worker count. The table
// records per-shard-count distribution stats (busy workers, step split);
// any divergence fails the experiment — and therefore the bench gate —
// loudly rather than printing a subtly wrong row.
func D1ShardInvariance(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	gen := corpus.DefaultWikiConfig()
	gen.N = cfg.n(20000)
	ins, err := corpus.GenerateWiki(gen, rng.New(cfg.Seed).Split("wiki-corpus"))
	if err != nil {
		return err
	}
	store := corpus.NewMemStore(ins)
	// The task is rebuilt from the exact (name, store, version, seed-split)
	// recipe the dist workers use, so worker-side extraction is contractually
	// identical to the coordinator's reference run.
	task, grouper, err := workload.Build("wiki", store, 0, rng.New(cfg.Seed).Split("task"))
	if err != nil {
		return err
	}
	groups, err := grouper.Group(store, 32, rng.New(cfg.Seed).Split("index"))
	if err != nil {
		return err
	}
	maxInputs := store.Len() / 2
	if maxInputs > 800 {
		maxInputs = 800
	}
	eng, err := core.New(core.Config{Policy: "eps-greedy:0.1", Seed: cfg.Seed + 2, MaxInputs: maxInputs})
	if err != nil {
		return err
	}
	ref, err := eng.Run(task, groups)
	if err != nil {
		return err
	}

	table := &Table{
		ID:     "D1",
		Title:  "Distributed shard-count invariance (wiki task, local transport)",
		Header: []string{"shards", "workers-busy", "min-steps", "max-steps", "inputs", "final-q", "identical"},
	}
	table.AddRow("1 (in-engine)", "-", "-", "-", d(ref.InputsProcessed), f(ref.FinalQuality), "reference")
	for _, shards := range []int{1, 2, 4} {
		tr := dist.NewLocalTransport(store, shards, nil, nil)
		res, err := dist.Run(context.Background(), eng, tr,
			dist.Spec{RunID: fmt.Sprintf("d1-s%d", shards), Task: "wiki", Seed: cfg.Seed, Shards: shards},
			task, groups)
		tr.Close()
		if err != nil {
			return fmt.Errorf("experiments: D1 shards=%d: %w", shards, err)
		}
		if !sameRunResult(ref, res.RunResult) {
			return fmt.Errorf("experiments: D1 shards=%d diverged from the single-process run (determinism contract broken)", shards)
		}
		busy, minSteps, maxSteps := 0, res.RunResult.InputsProcessed, 0
		for _, ws := range res.Workers {
			if ws.Steps > 0 {
				busy++
			}
			if ws.Steps < minSteps {
				minSteps = ws.Steps
			}
			if ws.Steps > maxSteps {
				maxSteps = ws.Steps
			}
		}
		table.AddRow(d(shards), d(busy), d(minSteps), d(maxSteps),
			d(res.RunResult.InputsProcessed), f(res.RunResult.FinalQuality), "yes")
	}
	table.Notes = append(table.Notes,
		"identical = curve, arm stats, and summary byte-equal to the single-process engine",
		"the shard map is a pure function of (corpus size, shard count, seed); the policy never sees shards")
	return table.Fprint(w)
}

// sameRunResult compares everything the determinism contract covers —
// wall clock and phase timing legitimately vary between runs.
func sameRunResult(a, b *core.RunResult) bool {
	ca, cb := *a, *b
	ca.WallTime, cb.WallTime = 0, 0
	ca.Phases, cb.Phases = core.PhaseBreakdown{}, core.PhaseBreakdown{}
	return reflect.DeepEqual(ca, cb)
}
