package experiments

import (
	"fmt"
)

// PhaseBenchEntry is the phase-timing block zombie-bench writes to its
// JSON report: one standard wiki zombie run with its wall time split by
// inner-loop phase. CI diffs it between commits, so a regression names
// the phase that slowed down instead of just "the run got slower".
type PhaseBenchEntry struct {
	WallSeconds float64 `json:"wall_seconds"`
	// PhaseMillis maps the six disjoint phases (holdout, select, read,
	// extract, train, eval) to milliseconds.
	PhaseMillis map[string]float64 `json:"phase_ms"`
	// Coverage is the fraction of the wall time the phases explain; the
	// telemetry contract keeps it above 0.9.
	Coverage float64 `json:"coverage"`
	Inputs   int     `json:"inputs"`
}

// PhaseTimingBench runs the standard wiki zombie loop (the bench's
// reference workload) and reports its phase breakdown.
func PhaseTimingBench(cfg Config) (*PhaseBenchEntry, error) {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	eng, err := engineFor(policyFor(wl, "eps-greedy:0.1"), cfg.Seed+2, withWorkloadDefaults(wl, nil))
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(wl.Task, groups)
	if err != nil {
		return nil, err
	}
	cov := res.Phases.Coverage(res.WallTime)
	if cov > 1 {
		return nil, fmt.Errorf("experiments: phase coverage %.3f exceeds 1 — phases overlap", cov)
	}
	return &PhaseBenchEntry{
		WallSeconds: res.WallTime.Seconds(),
		PhaseMillis: res.Phases.Millis(),
		Coverage:    cov,
		Inputs:      res.InputsProcessed,
	}, nil
}
