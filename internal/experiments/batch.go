package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"zombie/internal/core"
	"zombie/internal/index"
	"zombie/internal/learner"
)

// batchSweepSizes are the K values the batch sweep reports. K=1 is the
// classic per-step loop; K=16 is where the amortization headroom levels
// off on the reference workload.
var batchSweepSizes = []int{1, 4, 16}

// batchRun executes the standard wiki zombie run at the given batch size
// under the quality-delta reward — the reward whose per-step before/after
// holdout bracket batching amortizes — and returns the result with its
// measured wall time.
func batchRun(wl *Workload, groups *index.Groups, batch int, seed int64) (*core.RunResult, time.Duration, error) {
	eng, err := engineFor("eps-greedy:0.1", seed, withWorkloadDefaults(wl, func(c *core.Config) {
		c.Reward = core.RewardQualityDelta
		c.BatchSize = batch
	}))
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res, err := eng.Run(wl.Task, groups)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// runsMatch reports whether two runs are observably identical: same
// inputs, final quality, stop reason, and full learning curve. This is
// the batching determinism contract (wall time excluded, of course).
func runsMatch(a, b *core.RunResult) bool {
	if a.InputsProcessed != b.InputsProcessed || a.FinalQuality != b.FinalQuality ||
		a.Stop != b.Stop || len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return true
}

// B1BatchSweep reports the batched-step extension: throughput of the wiki
// quality-delta run at K ∈ {1, 4, 16}. It asserts the two halves of the
// batching contract before printing anything — K=1 must reproduce the
// unbatched run exactly, and every K must replay deterministically.
func B1BatchSweep(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	ref, _, err := batchRun(wl, groups, 0, cfg.Seed+2)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "B1",
		Title:  "Batched bandit steps (wiki, quality-delta reward)",
		Header: []string{"batch", "inputs", "final quality", "curve points", "identical to K=1"},
	}
	for _, k := range batchSweepSizes {
		res, _, err := batchRun(wl, groups, k, cfg.Seed+2)
		if err != nil {
			return err
		}
		again, _, err := batchRun(wl, groups, k, cfg.Seed+2)
		if err != nil {
			return err
		}
		if !runsMatch(res, again) {
			return fmt.Errorf("experiments: B1: batch K=%d did not replay deterministically", k)
		}
		identical := runsMatch(res, ref)
		if k == 1 && !identical {
			return fmt.Errorf("experiments: B1: K=1 diverged from the unbatched run")
		}
		table.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", res.InputsProcessed),
			fmt.Sprintf("%.4f", res.FinalQuality), fmt.Sprintf("%d", len(res.Curve)),
			fmt.Sprintf("%t", identical))
	}
	table.Notes = []string{
		"every row replayed byte-identically; K=1 reproduces the unbatched loop exactly",
		"K>1 trades curve resolution (one point per batch boundary) for amortized selection/evaluation",
	}
	if err := table.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// BatchPoint is one K value's timing inside the bench report.
type BatchPoint struct {
	Batch       int     `json:"batch"`
	Inputs      int     `json:"inputs"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// AllocsPerInput is heap allocations per processed input over the
	// whole run (runtime.MemStats.Mallocs delta), the regression number
	// the allocation-free inner loop is held to.
	AllocsPerInput float64 `json:"allocs_per_input"`
}

// BatchBenchEntry is the batch-sweep block of the bench report: the same
// wiki quality-delta run at each K, plus the headline K=16-over-K=1
// throughput ratio CI gates on.
type BatchBenchEntry struct {
	Points []BatchPoint `json:"points"`
	// SpeedupK16 is steps/sec at the largest K over steps/sec at K=1.
	SpeedupK16 float64 `json:"speedup_k16"`
	// ByteIdentical reports whether K=1 reproduced the unbatched run.
	ByteIdentical bool `json:"byte_identical"`
}

// BatchSweepBench times the batch sweep for the bench report. Allocation
// counts come from MemStats deltas around each run; a GC fence before
// each measurement keeps scavenging noise out of the Mallocs counter
// (Mallocs itself is monotonic, the fence just stabilizes timing).
func BatchSweepBench(cfg Config) (*BatchBenchEntry, error) {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	ref, _, err := batchRun(wl, groups, 0, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	entry := &BatchBenchEntry{}
	var perSec []float64
	for _, k := range batchSweepSizes {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, wall, err := batchRun(wl, groups, k, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		p := BatchPoint{Batch: k, Inputs: res.InputsProcessed, WallSeconds: wall.Seconds()}
		if wall > 0 {
			p.StepsPerSec = float64(res.InputsProcessed) / wall.Seconds()
		}
		if res.InputsProcessed > 0 {
			p.AllocsPerInput = float64(after.Mallocs-before.Mallocs) / float64(res.InputsProcessed)
		}
		entry.Points = append(entry.Points, p)
		perSec = append(perSec, p.StepsPerSec)
		if k == 1 {
			entry.ByteIdentical = runsMatch(res, ref)
		}
	}
	if first := perSec[0]; first > 0 {
		entry.SpeedupK16 = perSec[len(perSec)-1] / first
	}
	return entry, nil
}

// AllocBenchEntry records allocs/op for the two hottest leaf operations
// the inner loop calls, measured directly (MemStats deltas) so the bench
// report carries the same numbers `go test -benchmem` reports.
type AllocBenchEntry struct {
	WikiExtractAllocsPerOp    float64 `json:"wiki_extract_allocs_per_op"`
	HoldoutQualityAllocsPerOp float64 `json:"holdout_quality_allocs_per_op"`
}

// allocsPerOp runs f ops times and returns the mean heap allocations per
// call. Must be called with no other goroutines allocating.
func allocsPerOp(ops int, f func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// AllocBench measures the leaf allocation counts on the wiki workload:
// one feature extraction per op, and one full holdout scoring per op over
// a holdout trained on the extracted examples.
func AllocBench(cfg Config) (*AllocBenchEntry, error) {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return nil, err
	}
	task := wl.Task
	var examples []learner.Example
	for _, idx := range task.HoldoutIdx {
		res, err := task.Feature.Extract(task.Store.Get(idx))
		if err != nil {
			return nil, err
		}
		if res.Produced {
			examples = append(examples, res.Example)
		}
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("experiments: alloc bench extracted no examples")
	}
	model := task.NewModel(task.Feature)
	for _, ex := range examples {
		model.PartialFit(ex)
	}
	holdout := learner.NewHoldout(examples, task.Metric, task.Positive)

	entry := &AllocBenchEntry{}
	pool := task.PoolIdx
	entry.WikiExtractAllocsPerOp = allocsPerOp(200, func() {
		in := task.Store.Get(pool[0])
		pool = append(pool[1:], pool[0])
		if _, err := task.Feature.Extract(in); err != nil {
			panic(err)
		}
	})
	entry.HoldoutQualityAllocsPerOp = allocsPerOp(20, func() {
		holdout.Quality(model)
	})
	return entry, nil
}
