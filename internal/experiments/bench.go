package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"zombie/internal/buildinfo"
)

// BenchEntry records one experiment's timing inside a benchmark run.
type BenchEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
	OutputBytes int     `json:"output_bytes"`
	// SequentialWallSeconds and Speedup are filled when the bench also ran
	// the sequential baseline (Parallel > 1): Speedup is sequential wall
	// over parallel wall.
	SequentialWallSeconds float64 `json:"sequential_wall_seconds,omitempty"`
	Speedup               float64 `json:"speedup,omitempty"`
	// ByteIdentical reports whether the parallel output matched the
	// sequential baseline byte for byte; nil when no baseline ran.
	ByteIdentical *bool `json:"byte_identical,omitempty"`
}

// BenchReport is the machine-readable result of a zombie-bench timing run
// — the regression artifact CI diffs between commits.
type BenchReport struct {
	// Version and Commit identify the build that produced the report
	// (buildinfo.Resolve), so a committed BENCH_*.json is attributable to
	// the exact commit it measured.
	Version     string       `json:"version"`
	Commit      string       `json:"commit"`
	Scale       float64      `json:"scale"`
	Seed        int64        `json:"seed"`
	Parallel    int          `json:"parallel"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Experiments []BenchEntry `json:"experiments"`
	// CacheIteration is the extraction-cache cold-vs-warm timing block,
	// present when the bench included experiment C1.
	CacheIteration *CacheBenchEntry `json:"cache_iteration,omitempty"`
	// SessionWarmstart is the warm-vs-cold recipe-session block, present
	// when the bench included experiment S1.
	SessionWarmstart *SessionWarmstartBenchEntry `json:"session_warmstart,omitempty"`
	// PhaseTiming breaks the reference wiki run's wall time down by
	// inner-loop phase, so a bench regression names the phase that slowed.
	PhaseTiming *PhaseBenchEntry `json:"phase_timing,omitempty"`
	// BatchSweep times the batched inner loop at each K and carries the
	// K=16-over-K=1 throughput ratio CI gates on.
	BatchSweep *BatchBenchEntry `json:"batch_sweep,omitempty"`
	// Alloc records allocs/op for the hottest leaf operations, the
	// regression guard for the allocation-free inner loop.
	Alloc *AllocBenchEntry `json:"alloc,omitempty"`
	// Durability times the control plane's write-ahead journal: append
	// latency on the submit path and cold-recovery replay wall time.
	Durability *DurabilityBenchEntry `json:"durability,omitempty"`
	// Tracing measures the span tracer's wall-time overhead on the
	// reference run (traced vs untraced in the same process) — the gate
	// holds Overhead under 1.05.
	Tracing      *TracingBenchEntry `json:"tracing,omitempty"`
	TotalSeconds float64            `json:"total_seconds"`
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunBench executes the given experiments (all when ids is empty), timing
// each one, writing their normal output to w, and returning the timing
// report. With cfg.Parallel > 1 each experiment additionally re-runs at
// Parallel = 1 to measure speedup-vs-sequential and to check the
// determinism contract: the report records whether the two outputs matched
// byte for byte. Experiments that print measured wall-clock values (T3 and
// T4 include index build times) legitimately differ between any two runs,
// so a false there is expected; the strict assertions live in the test
// suite, which compares the wall-clock-free experiments (T2, F1).
func RunBench(cfg Config, ids []string, w io.Writer) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	if len(ids) == 0 {
		ids = IDs()
	}
	version, commit := buildinfo.Resolve()
	report := &BenchReport{
		Version:    version,
		Commit:     commit,
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		Parallel:   cfg.Parallel,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	total := time.Now()
	for _, id := range ids {
		if Title(id) == "" {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
		}
		var out bytes.Buffer
		start := time.Now()
		if err := Run(id, cfg, &out); err != nil {
			return nil, fmt.Errorf("experiments: bench %s: %w", id, err)
		}
		entry := BenchEntry{
			ID:          id,
			Title:       Title(id),
			WallSeconds: time.Since(start).Seconds(),
			OutputBytes: out.Len(),
		}
		if cfg.Parallel > 1 {
			seqCfg := cfg
			seqCfg.Parallel = 1
			var seqOut bytes.Buffer
			seqStart := time.Now()
			if err := Run(id, seqCfg, &seqOut); err != nil {
				return nil, fmt.Errorf("experiments: bench %s (sequential baseline): %w", id, err)
			}
			entry.SequentialWallSeconds = time.Since(seqStart).Seconds()
			if entry.WallSeconds > 0 {
				entry.Speedup = entry.SequentialWallSeconds / entry.WallSeconds
			}
			identical := bytes.Equal(out.Bytes(), seqOut.Bytes())
			entry.ByteIdentical = &identical
		}
		report.Experiments = append(report.Experiments, entry)
		if _, err := w.Write(out.Bytes()); err != nil {
			return nil, err
		}
	}
	for _, id := range ids {
		if id != "C1" {
			continue
		}
		cacheEntry, err := CacheIterationBench(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: cache iteration bench: %w", err)
		}
		report.CacheIteration = cacheEntry
		break
	}
	for _, id := range ids {
		if id != "S1" {
			continue
		}
		sessionEntry, err := SessionWarmstartBench(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: session warmstart bench: %w", err)
		}
		report.SessionWarmstart = sessionEntry
		break
	}
	phaseEntry, err := PhaseTimingBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: phase timing bench: %w", err)
	}
	report.PhaseTiming = phaseEntry
	batchEntry, err := BatchSweepBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: batch sweep bench: %w", err)
	}
	report.BatchSweep = batchEntry
	allocEntry, err := AllocBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: alloc bench: %w", err)
	}
	report.Alloc = allocEntry
	durabilityEntry, err := DurabilityBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: durability bench: %w", err)
	}
	report.Durability = durabilityEntry
	tracingEntry, err := TracingBench(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: tracing bench: %w", err)
	}
	report.Tracing = tracingEntry
	report.TotalSeconds = time.Since(total).Seconds()
	return report, nil
}
