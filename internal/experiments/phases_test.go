package experiments

import (
	"bytes"
	"testing"
)

// TestPhaseTimingBench: the phase block accounts for the run it measures —
// the observable phases are populated and together explain at least 90% of
// the wall time, the coverage contract the telemetry layer promises.
func TestPhaseTimingBench(t *testing.T) {
	entry, err := PhaseTimingBench(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if entry.WallSeconds <= 0 || entry.Inputs <= 0 {
		t.Fatalf("phase bench malformed: %+v", entry)
	}
	if entry.Coverage < 0.9 || entry.Coverage > 1 {
		t.Fatalf("phase coverage %.3f outside [0.9, 1]", entry.Coverage)
	}
	for _, phase := range []string{"holdout", "extract", "train", "eval"} {
		if entry.PhaseMillis[phase] <= 0 {
			t.Errorf("phase %q unmeasured: %+v", phase, entry.PhaseMillis)
		}
	}
}

// TestRunBenchIncludesPhaseTiming: every bench report carries the phase
// block regardless of which experiments ran.
func TestRunBenchIncludesPhaseTiming(t *testing.T) {
	report, err := RunBench(tiny, []string{"T1"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	pt := report.PhaseTiming
	if pt == nil {
		t.Fatal("phase_timing block missing from bench report")
	}
	if pt.Coverage < 0.9 || pt.PhaseMillis["extract"] <= 0 {
		t.Fatalf("phase_timing malformed: %+v", pt)
	}
}
