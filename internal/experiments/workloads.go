package experiments

import (
	"fmt"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// Config scales and seeds an experiment run. Scale 1.0 is the full
// 20k-input corpora; the repo-root benchmarks use ~0.1.
type Config struct {
	Scale float64
	Seed  int64
	// Parallel bounds the concurrent runs (and index-build workers) each
	// experiment may use; <= 0 and 1 both run sequentially. Every run
	// derives its randomness from explicit seeds and results merge in
	// submission order, so the emitted tables and series are byte-identical
	// for any value — the knob only changes wall-clock time.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 20160516 // the paper's publication date
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	return c
}

func (c Config) n(full int) int {
	n := int(float64(full) * c.Scale)
	if n < 400 {
		n = 400
	}
	return n
}

// Workload is a ready-to-run task plus its corpus and default index
// parameters.
type Workload struct {
	Task  *featurepipe.Task
	Store *corpus.MemStore
	// DefaultK is the index group count the headline experiments use.
	DefaultK int
	// Grouper builds the task's informative index.
	Grouper index.Grouper
	// QualityTarget is the fraction of full-scan quality the
	// time-to-quality experiments aim for.
	QualityTarget float64
	// Reward is the task's default reward function. Extraction-style
	// tasks use the cheap usefulness bit; dense tasks (every input
	// produces an example) have no meaningful usefulness bit and default
	// to the quality-delta reward.
	Reward core.RewardKind
	// RewardSubsample overrides the delta-reward subsample size (0 keeps
	// the engine default). Dense multi-class metrics need a larger
	// subsample to de-noise per-step deltas.
	RewardSubsample int
	// PolicyStats overrides arm-statistics aging (zero value keeps the
	// engine default). Delta rewards decay as the learner saturates, so
	// dense tasks age their arm estimates.
	PolicyStats bandit.StatsConfig
	// Policy overrides the default bandit policy for this task ("" keeps
	// the experiment's choice).
	Policy bandit.Spec
}

// Groups builds the workload's default index.
func (w *Workload) Groups(k int, seed int64) (*index.Groups, error) {
	return w.Grouper.Group(w.Store, k, rng.New(seed))
}

// WikiWorkload is the extraction task: rare relevant pages, hashed-text
// k-means index, F1 of the positive class. Inputs cost 150ms simulated
// (parse + extract over a full page), the cost that makes the paper's
// full-corpus runs hour-scale.
func WikiWorkload(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	gen := corpus.DefaultWikiConfig()
	gen.N = cfg.n(20000)
	ins, err := corpus.GenerateWiki(gen, rng.New(cfg.Seed).Split("wiki-corpus"))
	if err != nil {
		return nil, err
	}
	store := corpus.NewMemStore(ins)
	feature := featurepipe.NewWikiFeature(4)
	task, err := featurepipe.NewTask("wiki", store, feature,
		func(f featurepipe.FeatureFunc) learner.Model {
			// Multinomial NB over hashed token counts: incremental and
			// order-insensitive, so the bandit's skewed input order cannot
			// erase earlier learning (plain SGD forgets the rare class
			// once its groups deplete).
			return learner.NewMultinomialNB(f.Dim(), 2, 1)
		},
		learner.MetricF1, 1,
		featurepipe.CostModel{PerInput: 150 * time.Millisecond},
		featurepipe.TaskOptions{}, rng.New(cfg.Seed).Split("wiki-task"))
	if err != nil {
		return nil, err
	}
	return &Workload{
		Task:          task,
		Store:         store,
		DefaultK:      32,
		Grouper:       &index.KMeansGrouper{Vectorizer: index.NewHashedText(256), Config: index.KMeansConfig{MaxIter: 25, Workers: cfg.Parallel}},
		QualityTarget: 0.95,
	}, nil
}

// SongWorkload is the MSD-style genre-classification task: every input
// produces an example (dense), quality is macro-F1 over Zipf-skewed
// genres, and the rare genres are both scarcer and fuzzier (higher
// within-class variance), so they need disproportionately many examples.
// Useful inputs are the rare-genre songs. Dense tasks are where the
// paper's speedups are smallest: the default policy keeps exploration
// high (decaying ε) because macro-F1 punishes starving any class.
func SongWorkload(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	gen := corpus.DefaultSongConfig()
	gen.N = cfg.n(20000)
	ins, err := corpus.GenerateSongs(gen, rng.New(cfg.Seed).Split("song-corpus"))
	if err != nil {
		return nil, err
	}
	store := corpus.NewMemStore(ins)
	feature := featurepipe.NewSongFeature(1, gen)
	task, err := featurepipe.NewTask("songs", store, feature,
		func(f featurepipe.FeatureFunc) learner.Model {
			// Gaussian NB: per-class statistics are unaffected by the
			// sampling distribution over other classes, so bandit-skewed
			// streams cannot bias the fit (a global least-squares
			// regressor, by contrast, inherits the sampling bias).
			return learner.NewGaussianNB(f.Dim(), gen.Genres, 1e-3)
		},
		learner.MetricMacroF1, 0,
		featurepipe.CostModel{PerInput: 30 * time.Millisecond},
		featurepipe.TaskOptions{}, rng.New(cfg.Seed).Split("song-task"))
	if err != nil {
		return nil, err
	}
	numeric := index.NewNumeric(gen.Dim)
	numeric.FitStandardize(store)
	return &Workload{
		Task:          task,
		Store:         store,
		DefaultK:      32,
		Grouper:       &index.KMeansGrouper{Vectorizer: numeric, Config: index.KMeansConfig{MaxIter: 25, Workers: cfg.Parallel}},
		QualityTarget: 0.95,
		Reward:        core.RewardUsefulness,
		Policy:        "eps-decay:0.9:0.002",
	}, nil
}

// ImageWorkload is the needle-in-a-haystack detection task: ~2.5%
// positives concentrated in a few visual clusters, numeric k-means index,
// F1 of the positive class. This is where the paper reports its largest
// (up to 8x) speedups. Vision feature code is the most expensive: 400ms
// simulated per input.
func ImageWorkload(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	gen := corpus.DefaultImageConfig()
	gen.N = cfg.n(20000)
	ins, err := corpus.GenerateImages(gen, rng.New(cfg.Seed).Split("image-corpus"))
	if err != nil {
		return nil, err
	}
	store := corpus.NewMemStore(ins)
	feature := featurepipe.NewImageFeature(1, gen)
	task, err := featurepipe.NewTask("image", store, feature,
		func(f featurepipe.FeatureFunc) learner.Model {
			// Gaussian NB: incremental, order-insensitive, near-optimal on
			// the cluster-Gaussian descriptors.
			return learner.NewGaussianNB(f.Dim(), 2, 1e-3)
		},
		learner.MetricF1, 1,
		featurepipe.CostModel{PerInput: 400 * time.Millisecond},
		featurepipe.TaskOptions{}, rng.New(cfg.Seed).Split("image-task"))
	if err != nil {
		return nil, err
	}
	numeric := index.NewNumeric(gen.Dim)
	numeric.FitStandardize(store)
	return &Workload{
		Task:          task,
		Store:         store,
		DefaultK:      32,
		Grouper:       &index.KMeansGrouper{Vectorizer: numeric, Config: index.KMeansConfig{MaxIter: 25, Workers: cfg.Parallel}},
		QualityTarget: 0.95,
	}, nil
}

// AllWorkloads builds the three evaluation tasks, concurrently when
// cfg.Parallel allows. Each builder seeds its own RNG substreams, so the
// workloads are identical however they are scheduled.
func AllWorkloads(cfg Config) ([]*Workload, error) {
	cfg = cfg.withDefaults()
	builders := []struct {
		name  string
		build func(Config) (*Workload, error)
	}{
		{"wiki", WikiWorkload},
		{"song", SongWorkload},
		{"image", ImageWorkload},
	}
	return parallel.MapErr(cfg.Parallel, len(builders), func(i int) (*Workload, error) {
		wl, err := builders[i].build(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s workload: %w", builders[i].name, err)
		}
		return wl, nil
	})
}
