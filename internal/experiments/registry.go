package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"zombie/internal/index"
	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// buildNamedGroups builds groups for a workload with a named strategy;
// used by the indexing ablation. "default" uses the workload's grouper.
// workers bounds the goroutines the k-means and tf-idf builds may use;
// the built groups are identical for any count.
func buildNamedGroups(wl *Workload, strategy string, k int, seed int64, workers int) (*index.Groups, error) {
	r := rng.New(seed)
	switch strategy {
	case "default":
		return wl.Groups(k, seed)
	case "kmeans-text":
		g := &index.KMeansGrouper{Vectorizer: index.NewHashedText(256), Config: index.KMeansConfig{MaxIter: 25, Workers: workers}}
		return g.Group(wl.Store, k, r)
	case "kmeans-tfidf":
		tfidf := index.NewTFIDF(256)
		tfidf.FitParallel(wl.Store, workers)
		g := &index.KMeansGrouper{Vectorizer: tfidf, Config: index.KMeansConfig{MaxIter: 25, Workers: workers}}
		return g.Group(wl.Store, k, r)
	case "lsh-text":
		g := &index.LSHGrouper{Vectorizer: index.NewHashedText(256)}
		return g.Group(wl.Store, k, r)
	case "kmeans-numeric":
		dim := 0
		for i := 0; i < wl.Store.Len(); i++ {
			if v := wl.Store.Get(i).Values; len(v) > 0 {
				dim = len(v)
				break
			}
		}
		if dim == 0 {
			return nil, fmt.Errorf("experiments: kmeans-numeric needs numeric inputs")
		}
		v := index.NewNumeric(dim)
		v.FitStandardize(wl.Store)
		g := &index.KMeansGrouper{Vectorizer: v, Config: index.KMeansConfig{MaxIter: 25, Workers: workers}}
		return g.Group(wl.Store, k, r)
	case "hash":
		return index.HashGrouper{}.Group(wl.Store, k, r)
	case "random":
		return index.RandomGrouper{}.Group(wl.Store, k, r)
	case "oracle":
		return index.OracleGrouper{}.Group(wl.Store, k, r)
	default:
		if len(strategy) > len("attribute:") && strategy[:len("attribute:")] == "attribute:" {
			g := &index.AttributeGrouper{Attr: strategy[len("attribute:"):]}
			return g.Group(wl.Store, k, r)
		}
		return nil, fmt.Errorf("experiments: unknown index strategy %q", strategy)
	}
}

// Runner executes one experiment, writing its tables/series to w.
type Runner func(cfg Config, w io.Writer) error

var registry = map[string]struct {
	Title string
	Run   Runner
}{
	"B1": {"Batched bandit steps (throughput vs batch size)", B1BatchSweep},
	"C1": {"Extraction-cache warm-iteration speedup", C1CacheWarm},
	"D1": {"Distributed shard-count invariance", D1ShardInvariance},
	"T1": {"Dataset statistics", T1DatasetStats},
	"T2": {"Headline speedup (time to 95% quality)", T2Headline},
	"T3": {"End-to-end engineering session", T3Session},
	"T4": {"Index cost amortization", T4IndexCost},
	"F1": {"Learning curves", F1LearningCurves},
	"F2": {"Speedup vs group count", F2GroupCount},
	"F3": {"Bandit policy comparison", F3Policies},
	"F4": {"Reward-function ablation", F4Rewards},
	"F5": {"Early stopping", F5EarlyStop},
	"F6": {"Indexing-strategy ablation", F6Indexing},
	"F7": {"Arm-statistics aging ablation", F7Nonstationary},
	"F8": {"Speedup vs corpus size (extension)", F8Scaling},
	"S1": {"Warm-vs-cold recipe session (bandit warm start)", S1SessionWarmstart},
}

// IDs returns every experiment id in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title, or "" for an unknown id.
func Title(id string) string { return registry[id].Title }

// Run executes the experiment with the given id.
func Run(id string, cfg Config, w io.Writer) error {
	entry, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return entry.Run(cfg, w)
}

// RunAll executes every experiment. With cfg.Parallel > 1 the experiments
// compute concurrently, each into a private buffer; buffers flush to w in
// ID order after all complete, so the combined output is byte-identical to
// the sequential run. On error the experiments that finished cleanly are
// still flushed (in order, up to the first failure) before the error
// returns — matching what a sequential run would have written.
func RunAll(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	ids := IDs()
	type outcome struct {
		buf bytes.Buffer
		err error
	}
	outs := make([]outcome, len(ids))
	parallel.ForEach(cfg.Parallel, len(ids), func(i int) {
		outs[i].err = Run(ids[i], cfg, &outs[i].buf)
	})
	for i, id := range ids {
		if outs[i].err != nil {
			return fmt.Errorf("experiments: %s: %w", id, outs[i].err)
		}
		if _, err := w.Write(outs[i].buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
