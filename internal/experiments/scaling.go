package experiments

import (
	"fmt"
	"io"

	"zombie/internal/parallel"
)

// F8Scaling is an extension experiment beyond the paper's figures: Zombie's
// speedup as a function of corpus size on the image task. Input selection
// pays more the bigger the haystack — the number of inputs needed to reach
// the quality target is roughly constant for Zombie (it depends on how
// many *useful* inputs the learner needs) while the random scan's grows
// linearly with the corpus, so the speedup should grow with N.
func F8Scaling(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	table := &Table{
		ID:     "F8",
		Title:  "Speedup vs corpus size (image task; extension)",
		Header: []string{"corpus-n", "target-q", "scan-inputs", "zombie-inputs", "speedup"},
	}
	fracs := []float64{0.125, 0.25, 0.5, 1.0}
	rows, err := parallel.MapErr(cfg.Parallel, len(fracs), func(i int) ([]string, error) {
		sub := cfg
		sub.Scale = cfg.Scale * fracs[i]
		wl, err := ImageWorkload(sub)
		if err != nil {
			return nil, err
		}
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		c, err := compareMedian(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, 3, cfg.Parallel, nil)
		if err != nil {
			return nil, err
		}
		if !c.ScanReached || !c.ZombieReached {
			return []string{d(wl.Store.Len()), f(c.Target), "n/a", "n/a", "n/a"}, nil
		}
		return []string{
			d(wl.Store.Len()),
			f(c.Target),
			d(c.ScanInputs),
			d(c.ZombieInputs),
			spd(c.SpeedupInputs()),
		}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("fractions of the configured scale (%.2f); corpus floor is 400 inputs", cfg.Scale),
		"expected shape: speedup grows with corpus size — the scan pays for the whole haystack, zombie only for the needles")
	return table.Fprint(w)
}
