// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md §4). Each experiment is a
// named runner that builds its workload, executes the engine and the
// baselines, and prints the same rows or series the paper reports.
// cmd/zombie-bench runs them at full scale; the repo-root benchmarks run
// them at reduced scale inside testing.B.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed after the table (assumptions, targets).
	Notes []string
}

// AddRow appends a row; it panics when the width disagrees with the
// header, which would mean a harness bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("experiments: table %s row has %d cells, header has %d", t.ID, len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f renders a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// d renders an int for table cells.
func d(v int) string { return fmt.Sprintf("%d", v) }

// spd renders a speedup factor.
func spd(v float64) string { return fmt.Sprintf("%.2fx", v) }
