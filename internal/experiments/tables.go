package experiments

import (
	"fmt"
	"io"
	"time"

	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/parallel"
)

// T1DatasetStats reproduces the dataset-statistics table: corpus sizes,
// usefulness rates, payload sizes, and default index shape per task.
func T1DatasetStats(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workloads, err := AllWorkloads(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "T1",
		Title:  "Dataset statistics",
		Header: []string{"task", "inputs", "pool", "holdout", "useful%", "mean-bytes", "k", "min-group", "max-group"},
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(workloads), func(i int) ([]string, error) {
		wl := workloads[i]
		st := corpus.ComputeStats(wl.Store)
		useful := usefulFraction(wl)
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		sizes := groups.Sizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return []string{
			wl.Task.Name,
			d(st.Inputs),
			d(len(wl.Task.PoolIdx)),
			d(len(wl.Task.HoldoutIdx)),
			fmt.Sprintf("%.1f%%", 100*useful),
			fmt.Sprintf("%.0f", st.MeanBytes),
			d(wl.DefaultK),
			d(min),
			d(max),
		}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"useful% is the ground-truth rate of inputs the task's reward marks useful",
		"groups built with each task's default k-means index")
	return table.Fprint(w)
}

// usefulFraction computes the ground-truth useful rate for a workload.
func usefulFraction(wl *Workload) float64 {
	n := wl.Store.Len()
	if n == 0 {
		return 0
	}
	useful := 0
	for i := 0; i < n; i++ {
		in := wl.Store.Get(i)
		if sf, ok := wl.Task.Feature.(*featurepipe.SongFeature); ok {
			if in.Truth.Class >= sf.Genres/2 {
				useful++
			}
		} else if in.Truth.Class == 1 {
			useful++
		}
	}
	return float64(useful) / float64(n)
}

// T2Headline reproduces the headline speedup table: inputs and simulated
// time to reach 95% of full-scan quality, random scan vs Zombie, per task.
// The paper reports speedups up to 8x on its most skewed task.
func T2Headline(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workloads, err := AllWorkloads(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:    "T2",
		Title: "Time to 95% of full-scan quality (scan vs zombie)",
		Header: []string{"task", "target-q", "scan-inputs", "zombie-inputs", "speedup",
			"scan-time", "zombie-time", "time-speedup"},
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(workloads), func(i int) ([]string, error) {
		wl := workloads[i]
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		c, err := compareMedian(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, 3, cfg.Parallel, nil)
		if err != nil {
			return nil, err
		}
		if !c.ScanReached || !c.ZombieReached {
			return []string{wl.Task.Name, f(c.Target), "n/a", "n/a", "n/a", "n/a", "n/a", "n/a"}, nil
		}
		return []string{
			wl.Task.Name,
			f(c.Target),
			d(c.ScanInputs),
			d(c.ZombieInputs),
			spd(c.SpeedupInputs()),
			c.ScanSim.Round(time.Second).String(),
			c.ZombieSim.Round(time.Second).String(),
			spd(c.SpeedupSim()),
		}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"policy eps-greedy(0.1), per-task default reward, k=32 k-means groups, median of 3 trials",
		"paper claim: feature-evaluation speedups up to 8x on the most skewed task")
	return table.Fprint(w)
}

// T3Session reproduces the end-to-end engineering session table (paper:
// total engineer wait cut from 8 hours to 5). Eight wiki feature-code
// versions are evaluated in sequence under the status-quo full random scan
// and under Zombie with early stopping.
func T3Session(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return err
	}
	session := featurepipe.StandardWikiSession()
	eng, err := engineFor("eps-greedy:0.1", cfg.Seed+2, func(c *core.Config) {
		c.EarlyStop = core.EarlyStopConfig{
			Enabled:        true,
			Window:         8,
			SlopeThreshold: 0.002,
			Patience:       2,
			MinInputs:      400,
		}
	})
	if err != nil {
		return err
	}
	// The two sessions are independent (the engine is immutable and each
	// run derives its own RNG substreams), so they can race.
	sessions, err := parallel.MapErr(cfg.Parallel, 2, func(i int) (*core.SessionResult, error) {
		if i == 0 {
			return eng.RunSession(session, wl.Task, groups, true)
		}
		return eng.RunSession(session, wl.Task, nil, false)
	})
	if err != nil {
		return err
	}
	zombie, scan := sessions[0], sessions[1]
	table := &Table{
		ID:     "T3",
		Title:  "End-to-end engineering session (8 feature versions, wiki task)",
		Header: []string{"iteration", "scan-inputs", "scan-q", "zombie-inputs", "zombie-q", "zombie-stop"},
	}
	for i := range scan.Iterations {
		si := scan.Iterations[i].Run
		zi := zombie.Iterations[i].Run
		table.AddRow(
			scan.Iterations[i].Version,
			d(si.InputsProcessed), f(si.FinalQuality),
			d(zi.InputsProcessed), f(zi.FinalQuality),
			zi.Stop.String(),
		)
	}
	ratio := 0.0
	if zombie.TotalTime() > 0 {
		ratio = float64(scan.TotalTime()) / float64(zombie.TotalTime())
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("scan session total: %s (processing %s + think %s)",
			scan.TotalTime().Round(time.Minute), scan.ProcessingTime.Round(time.Minute), scan.ThinkTime.Round(time.Minute)),
		fmt.Sprintf("zombie session total: %s (index %s + processing %s + think %s)",
			zombie.TotalTime().Round(time.Minute), zombie.IndexBuild.Round(time.Second),
			zombie.ProcessingTime.Round(time.Minute), zombie.ThinkTime.Round(time.Minute)),
		fmt.Sprintf("session speedup %.2fx (paper shape: 8h -> 5h, i.e. 1.6x)", ratio),
	)
	return table.Fprint(w)
}

// T4IndexCost reproduces the index amortization table: what the offline
// index build costs versus what each evaluation run saves, and how many
// runs it takes to break even.
func T4IndexCost(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	workloads, err := AllWorkloads(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:    "T4",
		Title: "Index build cost amortization",
		Header: []string{"task", "index-wall", "index-sim", "per-run-savings",
			"break-even-runs"},
	}
	rows, err := parallel.MapErr(cfg.Parallel, len(workloads), func(i int) ([]string, error) {
		wl := workloads[i]
		groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		// Simulated index cost: one cheap pass over the corpus at 2% of
		// the task's per-input feature cost (index features avoid the
		// expensive path by construction).
		simIndex := time.Duration(float64(wl.Task.Cost.PerInput) * 0.02 * float64(wl.Store.Len()))
		c, err := compareToTarget(wl, groups, "eps-greedy:0.1", wl.QualityTarget, cfg.Seed+2, nil)
		if err != nil {
			return nil, err
		}
		if !c.ScanReached || !c.ZombieReached {
			return []string{wl.Task.Name, groups.BuildTime.Round(time.Millisecond).String(),
				simIndex.Round(time.Second).String(), "n/a", "n/a"}, nil
		}
		savings := c.ScanSim - c.ZombieSim
		breakEven := "immediate"
		if savings <= 0 {
			breakEven = "never"
		} else if simIndex > savings {
			breakEven = d(int((simIndex+savings-1)/savings) + 0) // ceil
		} else {
			breakEven = "1"
		}
		return []string{
			wl.Task.Name,
			groups.BuildTime.Round(time.Millisecond).String(),
			simIndex.Round(time.Second).String(),
			savings.Round(time.Second).String(),
			breakEven,
		}, nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	table.Notes = append(table.Notes,
		"index-wall is measured wall-clock for k-means over the corpus",
		"index-sim charges one cheap corpus pass at 2% of the task's per-input cost",
		"per-run-savings is scan-vs-zombie simulated time to the 95% target")
	return table.Fprint(w)
}
