package experiments

import (
	"fmt"
	"io"
	"time"

	"zombie/internal/core"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
)

// runCacheIterations replays the composite wiki session twice through one
// shared extraction cache: the cold pass populates it, the warm pass
// replays the identical session against it. The returned wall times feed
// the bench report; everything else about the results is deterministic
// (the cache only elides recomputation, it never changes an answer).
func runCacheIterations(cfg Config) (cold, warm *core.SessionResult, coldWall, warmWall time.Duration, err error) {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	cache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	defer cache.Close()
	session := featurepipe.CompositeWikiSession()
	eng, err := engineFor("eps-greedy:0.1", cfg.Seed+2, func(c *core.Config) {
		c.Cache = cache
		// Coarse eval cadence: holdout scoring is model work the cache
		// cannot elide, so a tight cadence would dilute the measured
		// extraction speedup. Cold and warm passes share the cadence, so
		// determinism is unaffected.
		c.EvalEvery = 100
		c.EarlyStop = core.EarlyStopConfig{
			Enabled:        true,
			Window:         8,
			SlopeThreshold: 0.002,
			Patience:       2,
			MinInputs:      400,
		}
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	start := time.Now()
	cold, err = eng.RunSession(session, wl.Task, groups, true)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	coldWall = time.Since(start)
	start = time.Now()
	warm, err = eng.RunSession(session, wl.Task, groups, true)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	warmWall = time.Since(start)
	return cold, warm, coldWall, warmWall, nil
}

// sessionsMatch reports whether two session results are observably
// identical: same per-version inputs, qualities, stop reasons, and full
// learning curves. This is the cache determinism contract.
func sessionsMatch(a, b *core.SessionResult) bool {
	if len(a.Iterations) != len(b.Iterations) {
		return false
	}
	for i := range a.Iterations {
		ra, rb := a.Iterations[i].Run, b.Iterations[i].Run
		if ra.InputsProcessed != rb.InputsProcessed || ra.FinalQuality != rb.FinalQuality ||
			ra.Stop != rb.Stop || len(ra.Curve) != len(rb.Curve) {
			return false
		}
		for j := range ra.Curve {
			if ra.Curve[j] != rb.Curve[j] {
				return false
			}
		}
	}
	return true
}

// sessionCacheTraffic sums the extraction-cache hit/miss counters over a
// session's runs.
func sessionCacheTraffic(s *core.SessionResult) (hits, misses int64) {
	for _, it := range s.Iterations {
		hits += it.Run.CacheHits
		misses += it.Run.CacheMisses
	}
	return hits, misses
}

// C1CacheWarm exercises the extraction cache over the composite wiki
// session (an extension beyond the paper): four feature versions of three
// parts each, one part edited per step. The cold pass shows part-level
// reuse across versions (shared parts hit even on first contact with a
// version); the warm replay serves every extraction from cache and must
// reproduce the cold curves exactly. Wall-clock timings deliberately stay
// out of this table — zombie-bench's cache_iteration report carries them.
func C1CacheWarm(cfg Config, w io.Writer) error {
	cold, warm, _, _, err := runCacheIterations(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "C1",
		Title:  "Extraction-cache warm iteration (composite wiki session, 4 versions x 3 parts)",
		Header: []string{"iteration", "version", "inputs", "quality", "cache-hits", "cache-misses"},
	}
	for _, pass := range []struct {
		label string
		s     *core.SessionResult
	}{{"cold", cold}, {"warm", warm}} {
		for _, it := range pass.s.Iterations {
			table.AddRow(pass.label, it.Version,
				d(it.Run.InputsProcessed), f(it.Run.FinalQuality),
				fmt.Sprintf("%d", it.Run.CacheHits), fmt.Sprintf("%d", it.Run.CacheMisses))
		}
	}
	coldHits, coldMisses := sessionCacheTraffic(cold)
	warmHits, warmMisses := sessionCacheTraffic(warm)
	table.Notes = append(table.Notes,
		fmt.Sprintf("cold pass: %d hits / %d misses (hits = parts shared with earlier versions)", coldHits, coldMisses),
		fmt.Sprintf("warm pass: %d hits / %d misses", warmHits, warmMisses),
		fmt.Sprintf("warm curves identical to cold: %t", sessionsMatch(cold, warm)),
	)
	return table.Fprint(w)
}

// CacheBenchEntry is the cold-vs-warm timing block zombie-bench writes to
// its JSON report when the bench includes C1.
type CacheBenchEntry struct {
	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	WarmWallSeconds float64 `json:"warm_wall_seconds"`
	// Speedup is cold wall over warm wall: how much faster the identical
	// session replays once every extraction is cached.
	Speedup    float64 `json:"speedup"`
	WarmHits   int64   `json:"warm_hits"`
	WarmMisses int64   `json:"warm_misses"`
	// ByteIdentical reports whether the warm replay reproduced the cold
	// pass's curves exactly — the cache determinism contract.
	ByteIdentical bool `json:"byte_identical"`
}

// CacheIterationBench times the cold and warm session passes for the
// bench report. It re-runs the workload rather than reusing C1's output
// because the timing split between passes is not observable from the
// experiment's deterministic table.
func CacheIterationBench(cfg Config) (*CacheBenchEntry, error) {
	cold, warm, coldWall, warmWall, err := runCacheIterations(cfg)
	if err != nil {
		return nil, err
	}
	entry := &CacheBenchEntry{
		ColdWallSeconds: coldWall.Seconds(),
		WarmWallSeconds: warmWall.Seconds(),
		ByteIdentical:   sessionsMatch(cold, warm),
	}
	entry.WarmHits, entry.WarmMisses = sessionCacheTraffic(warm)
	if entry.WarmWallSeconds > 0 {
		entry.Speedup = entry.ColdWallSeconds / entry.WarmWallSeconds
	}
	return entry, nil
}
