package rng

import (
	"math"
	"testing"
)

func TestGaussianZeroStd(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if got := r.Gaussian(3.5, 0); got != 3.5 {
			t.Fatalf("zero-std Gaussian = %v", got)
		}
		if got := r.Gaussian(3.5, -1); got != 3.5 {
			t.Fatalf("negative-std Gaussian = %v", got)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(2)
	n := 40000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Gaussian(2, 3)
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-2) > 0.05 || math.Abs(std-3) > 0.05 {
		t.Fatalf("Gaussian(2,3): mean=%v std=%v", mean, std)
	}
}

func TestTruncGaussianPanics(t *testing.T) {
	r := New(3)
	mustPanic(t, "lo>hi", func() { r.TruncGaussian(0, 1, 2, 1) })
}

func TestGammaPanics(t *testing.T) {
	r := New(4)
	mustPanic(t, "shape", func() { r.Gamma(0, 1) })
	mustPanic(t, "scale", func() { r.Gamma(1, 0) })
}

func TestBetaPanics(t *testing.T) {
	r := New(5)
	mustPanic(t, "alpha", func() { r.Beta(0, 1) })
	mustPanic(t, "beta", func() { r.Beta(1, -1) })
}

func TestDirichletPanics(t *testing.T) {
	r := New(6)
	mustPanic(t, "n", func() { r.Dirichlet(1, 0) })
	mustPanic(t, "alpha", func() { r.Dirichlet(0, 3) })
}

func TestZipfPanics(t *testing.T) {
	r := New(7)
	mustPanic(t, "n", func() { r.NewZipf(1, 0) })
	mustPanic(t, "s", func() { r.NewZipf(0, 10) })
}

func TestPoissonPanics(t *testing.T) {
	r := New(8)
	mustPanic(t, "lambda", func() { r.Poisson(-1) })
}

func TestRangeBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	r := New(10)
	mustPanic(t, "choice", func() { r.Choice(0) })
}

func TestSeedAccessor(t *testing.T) {
	r := New(42)
	if r.Seed() != 42 {
		t.Fatalf("Seed = %d", r.Seed())
	}
	sub := r.Split("x")
	if sub.Seed() == 42 {
		t.Fatal("substream should report derived seed")
	}
}

func TestSampleWithoutReplacementPanicsNegative(t *testing.T) {
	r := New(11)
	mustPanic(t, "k<0", func() { r.SampleWithoutReplacement(5, -1) })
}
