// Package rng provides deterministic, splittable pseudo-random number
// generation for the Zombie system.
//
// Every stochastic component in the repository (corpus generators, bandit
// policies, learners that shuffle their training data, experiment
// harnesses) draws from an *rng.RNG seeded explicitly by its caller, so a
// run is exactly reproducible from its top-level seed. Substreams derived
// with Split are statistically independent of each other and stable across
// runs, which lets concurrent components share one logical seed without
// sharing a lock or perturbing each other's sequences.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic pseudo-random number generator. It wraps
// math/rand.Rand (never the global source) and adds the samplers the rest
// of the system needs: Gamma, Beta, Zipf, truncated Gaussian, and weighted
// choice. An RNG is not safe for concurrent use; derive one per goroutine
// with Split.
type RNG struct {
	*rand.Rand
	seed int64
}

// New returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical sequences.
func New(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this RNG was created with. Substreams report the
// derived seed, not the parent's.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent substream identified by name. The derived
// seed depends only on the parent seed and the name, not on how much of the
// parent stream has been consumed, so components can be added or reordered
// without disturbing each other's randomness.
func (r *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	putInt64(buf[:], r.seed)
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(int64(h.Sum64()))
}

// SplitN derives the i-th independent substream of a named family, e.g.
// one stream per trial in an experiment sweep.
func (r *RNG) SplitN(name string, i int) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	putInt64(buf[:], r.seed)
	h.Write(buf[:])
	h.Write([]byte(name))
	putInt64(buf[:], int64(i))
	h.Write(buf[:])
	return New(int64(h.Sum64()))
}

func putInt64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// Bernoulli returns true with probability p. Probabilities outside [0,1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform int in [lo, hi). It panics if hi <= lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		panic("rng: IntRange requires hi > lo")
	}
	return lo + r.Intn(hi-lo)
}

// Choice returns a uniformly chosen index in [0, n). It panics if n <= 0.
func (r *RNG) Choice(n int) int {
	if n <= 0 {
		panic("rng: Choice requires n > 0")
	}
	return r.Intn(n)
}

// WeightedChoice returns an index drawn proportionally to the non-negative
// weights. If all weights are zero it falls back to a uniform draw. It
// panics on an empty slice or a negative weight.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice on empty weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: WeightedChoice negative weight")
		}
		_ = i
		total += w
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n) in random order. It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	// Partial Fisher–Yates over an index array.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
