package rng

import "math"

// Gaussian returns a normal deviate with the given mean and standard
// deviation. A non-positive stddev returns mean exactly.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	if stddev <= 0 {
		return mean
	}
	return mean + stddev*r.NormFloat64()
}

// TruncGaussian returns a Gaussian deviate rejected into [lo, hi]. It
// panics if lo > hi. For pathological truncation windows (far tails) it
// falls back to clamping after a bounded number of rejections rather than
// looping forever.
func (r *RNG) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncGaussian requires lo <= hi")
	}
	for i := 0; i < 64; i++ {
		x := r.Gaussian(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exponential returns an exponential deviate with the given rate λ; the
// mean of the distribution is 1/λ. It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return r.ExpFloat64() / rate
}

// Gamma returns a Gamma(shape, scale) deviate using the Marsaglia–Tsang
// squeeze method, with the standard shape<1 boost. It panics if shape or
// scale is non-positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Beta returns a Beta(alpha, beta) deviate via the two-Gamma construction.
// It panics if either parameter is non-positive.
func (r *RNG) Beta(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("rng: Beta requires positive parameters")
	}
	x := r.Gamma(alpha, 1)
	y := r.Gamma(beta, 1)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Dirichlet returns a point on the simplex drawn from a symmetric
// Dirichlet(alpha) of dimension n. It panics if n <= 0 or alpha <= 0.
func (r *RNG) Dirichlet(alpha float64, n int) []float64 {
	if n <= 0 || alpha <= 0 {
		panic("rng: Dirichlet requires n > 0 and alpha > 0")
	}
	out := make([]float64, n)
	total := 0.0
	for i := range out {
		out[i] = r.Gamma(alpha, 1)
		total += out[i]
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent s
// (s > 1 is required by math/rand; we additionally support s in (0, 1] with
// a direct inverse-CDF table for the corpus generators).
type Zipf struct {
	cdf []float64
	r   *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0. Rank 0 is
// the most probable. The CDF table costs O(n) once; draws are O(log n).
func (r *RNG) NewZipf(s float64, n int) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	x := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Poisson returns a Poisson(lambda) deviate using Knuth's method for small
// lambda and a Gaussian approximation (rounded, clamped at 0) for large
// lambda. It panics if lambda < 0.
func (r *RNG) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson requires lambda >= 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 64 {
		x := r.Gaussian(lambda, math.Sqrt(lambda))
		if x < 0 {
			return 0
		}
		return int(x + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
