package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume part of a's stream before splitting; the substream must be
	// identical either way.
	for i := 0; i < 100; i++ {
		a.Float64()
	}
	sa := a.Split("corpus")
	sb := b.Split("corpus")
	for i := 0; i < 100; i++ {
		if sa.Float64() != sb.Float64() {
			t.Fatalf("substream depends on parent consumption at draw %d", i)
		}
	}
}

func TestSplitDistinctNames(t *testing.T) {
	r := New(1)
	a := r.Split("a")
	b := r.Split("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams with different names look identical (%d/64 equal draws)", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	r := New(3)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := r.SplitN("trial", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN produced duplicate seed for i=%d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(11)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f out of tolerance", rate)
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	r := New(13)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("arm %d: got rate %.4f want ~%.2f", i, got, want)
		}
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(17)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[r.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("uniform fallback never chose index %d", i)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	r := New(19)
	mustPanic(t, "empty", func() { r.WeightedChoice(nil) })
	mustPanic(t, "negative", func() { r.WeightedChoice([]float64{1, -1}) })
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(23)
	got := r.SampleWithoutReplacement(50, 20)
	if len(got) != 20 {
		t.Fatalf("got %d samples, want 20", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 50 {
			t.Fatalf("sample %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
	if s := r.SampleWithoutReplacement(5, 5); len(s) != 5 {
		t.Fatalf("k==n should return all indices, got %d", len(s))
	}
	if s := r.SampleWithoutReplacement(5, 0); len(s) != 0 {
		t.Fatalf("k==0 should return empty, got %d", len(s))
	}
	mustPanic(t, "k>n", func() { r.SampleWithoutReplacement(3, 4) })
}

func TestIntRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	mustPanic(t, "empty range", func() { r.IntRange(5, 5) })
}

func TestGammaMoments(t *testing.T) {
	r := New(31)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 2}, {3, 1}, {9, 0.5},
	} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(tc.shape, tc.scale)
		}
		mean := sum / float64(n)
		want := tc.shape * tc.scale
		if math.Abs(mean-want) > 0.08*want+0.02 {
			t.Fatalf("Gamma(%.1f,%.1f) mean %.4f want ~%.4f", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(37)
	alpha, beta := 2.0, 5.0
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Beta(alpha, beta)
		if x < 0 || x > 1 {
			t.Fatalf("Beta deviate %.4f outside [0,1]", x)
		}
		sum += x
	}
	mean := sum / float64(n)
	want := alpha / (alpha + beta)
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("Beta mean %.4f want ~%.4f", mean, want)
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(41)
	if err := quick.Check(func(seed int64) bool {
		p := New(seed).Dirichlet(0.7, 5)
		total := 0.0
		for _, v := range p {
			if v < 0 {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}, &quick.Config{MaxCount: 50, Rand: r.Rand}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(43)
	z := r.NewZipf(1.1, 1000)
	counts := make([]int, 1000)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf rank 0 (%d) not more frequent than rank 10 (%d)", counts[0], counts[10])
	}
	if counts[0] <= n/100 {
		t.Fatalf("Zipf head too light: %d draws of rank 0 out of %d", counts[0], n)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(47)
	z := r.NewZipf(0.8, 17)
	for i := 0; i < 5000; i++ {
		v := z.Draw()
		if v < 0 || v >= 17 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
	}
}

func TestPoisson(t *testing.T) {
	r := New(53)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	for _, lambda := range []float64{0.5, 4, 32, 200} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%.1f) mean %.4f out of tolerance", lambda, mean)
		}
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	r := New(59)
	for i := 0; i < 5000; i++ {
		x := r.TruncGaussian(0, 1, -0.5, 0.5)
		if x < -0.5 || x > 0.5 {
			t.Fatalf("TruncGaussian escaped bounds: %.4f", x)
		}
	}
	// Far-tail window must terminate via the clamp fallback.
	x := r.TruncGaussian(0, 1, 50, 60)
	if x < 50 || x > 60 {
		t.Fatalf("TruncGaussian far-tail clamp out of bounds: %.4f", x)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(61)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean %.4f want ~0.5", mean)
	}
	mustPanic(t, "rate<=0", func() { r.Exponential(0) })
}

func TestShuffleIntsPermutes(t *testing.T) {
	r := New(67)
	s := make([]int, 100)
	for i := range s {
		s[i] = i
	}
	r.ShuffleInts(s)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("shuffle lost elements: %d distinct", len(seen))
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
