package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"zombie/internal/otrace"
)

// HTTPTransport talks JSON to dist worker endpoints served by
// zombie-serve (see internal/server's /dist/* routes): any zombie-serve
// process with the corpus registered is a worker. Per-run deadlines and
// cancellation ride on the request context, exactly like the rest of the
// serving layer; retry and backoff live in the coordinator, transport-
// independently, so both transports fail through the same code path.
type HTTPTransport struct {
	clients   []Client
	client    *http.Client
	closeOnce sync.Once
}

// NewHTTPTransport returns a transport over the given worker base URLs
// (scheme + host[:port], e.g. "http://127.0.0.1:8821"), one shard per
// address in order.
func NewHTTPTransport(addrs []string) *HTTPTransport {
	t := &HTTPTransport{client: &http.Client{}}
	for _, addr := range addrs {
		t.clients = append(t.clients, &httpClient{
			base: strings.TrimRight(addr, "/"),
			hc:   t.client,
		})
	}
	return t
}

func (t *HTTPTransport) Name() string      { return "http" }
func (t *HTTPTransport) Clients() []Client { return t.clients }

// Close releases idle connections.
func (t *HTTPTransport) Close() error {
	t.closeOnce.Do(func() { t.client.CloseIdleConnections() })
	return nil
}

// httpClient is one worker's JSON-over-HTTP connection.
type httpClient struct {
	base string
	hc   *http.Client
}

// maxResponseBytes bounds a worker response read. Holdout responses carry
// one encoded example per owned holdout input and dominate; 256 MiB is
// orders of magnitude above any real corpus slice while still refusing to
// buffer an endless stream from a confused endpoint.
const maxResponseBytes = 256 << 20

// post sends req as JSON and decodes the 200 response into resp. A
// non-200 with the server's {"error": "..."} body surfaces as an error
// with exactly that message — worker-produced errors must cross the wire
// verbatim for the transport-identity contract.
func (c *httpClient) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: marshal %s request: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: build %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Mirror the propagated trace context into the standard W3C header so
	// HTTP-level middleware (and the server handler's header fallback) see
	// the same value the wire field carries.
	if tc, ok := req.(traceCarrier); ok {
		if tp := tc.traceparent(); tp != "" {
			hreq.Header.Set(otrace.Header, tp)
		}
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("dist: %s %s: %w", c.base, path, err)
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, maxResponseBytes))
	if err != nil {
		return fmt.Errorf("dist: read %s response: %w", path, err)
	}
	if hres.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return errors.New(e.Error)
		}
		return fmt.Errorf("dist: %s %s: status %d", c.base, path, hres.StatusCode)
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("dist: decode %s response: %w", path, err)
	}
	return nil
}

func (c *httpClient) Init(ctx context.Context, req InitRequest) (InitResponse, error) {
	var resp InitResponse
	if err := c.post(ctx, "/dist/init", req, &resp); err != nil {
		return InitResponse{}, err
	}
	return resp, nil
}

func (c *httpClient) Holdout(ctx context.Context, req HoldoutRequest) (HoldoutResponse, error) {
	var resp HoldoutResponse
	if err := c.post(ctx, "/dist/holdout", req, &resp); err != nil {
		return HoldoutResponse{}, err
	}
	if err := resp.DecodeResults(); err != nil {
		return HoldoutResponse{}, err
	}
	return resp, nil
}

func (c *httpClient) Step(ctx context.Context, req StepRequest) (StepResponse, error) {
	var resp StepResponse
	if err := c.post(ctx, "/dist/step", req, &resp); err != nil {
		return StepResponse{}, err
	}
	if err := resp.DecodeResult(); err != nil {
		return StepResponse{}, err
	}
	return resp, nil
}

func (c *httpClient) StepBatch(ctx context.Context, req StepBatchRequest) (StepBatchResponse, error) {
	var resp StepBatchResponse
	if err := c.post(ctx, "/dist/step-batch", req, &resp); err != nil {
		return StepBatchResponse{}, err
	}
	if err := resp.DecodeResults(); err != nil {
		return StepBatchResponse{}, err
	}
	return resp, nil
}

func (c *httpClient) Finish(ctx context.Context, req FinishRequest) (FinishResponse, error) {
	var resp FinishResponse
	if err := c.post(ctx, "/dist/finish", req, &resp); err != nil {
		return FinishResponse{}, err
	}
	return resp, nil
}
