package dist

import (
	"fmt"

	"zombie/internal/rng"
)

// ShardMap is the deterministic assignment of corpus store indices to
// worker shards. It is a pure function of (n, shards, seed): the
// coordinator and every worker compute it independently from the run spec
// and must agree byte-for-byte, which is what lets workers validate
// ownership without a membership protocol. Because n is the count of
// inputs that *survived* loading (a tolerant JSONL read may have dropped
// lines), two processes mounting the same corpus artifact always agree on
// the map even when the raw file is partially corrupt — they agree on the
// survivors, so they agree on the assignment.
type ShardMap struct {
	// Shards is the worker count the map was built for.
	Shards int `json:"shards"`
	// Assign maps store index → owning shard in [0, Shards).
	Assign []int `json:"assign"`
}

// NewShardMap partitions n store indices across shards. Assignment is
// round-robin over a seeded permutation: shard sizes are balanced within
// one, membership is decorrelated from store order (a corpus sorted by
// class cannot load one shard with one class), and the result depends
// only on the arguments. shards may exceed n — the surplus shards are
// simply empty, which is a valid map, not an error: a coordinator asked
// for 8 workers over a 5-input corpus routes 5 steps and idles 3 workers.
// n == 0 (an entirely empty corpus) likewise yields a valid map with
// every shard empty; task construction rejects empty corpora downstream.
func NewShardMap(n, shards int, seed int64) (*ShardMap, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("dist: shard count %d out of range (want >= 1)", shards)
	}
	if n < 0 {
		return nil, fmt.Errorf("dist: negative input count %d", n)
	}
	assign := make([]int, n)
	perm := rng.New(seed).Split("shardmap").Perm(n)
	for i, idx := range perm {
		assign[idx] = i % shards
	}
	return &ShardMap{Shards: shards, Assign: assign}, nil
}

// Owner returns the shard owning store index idx, or -1 when idx is out
// of range (the caller reports it; an out-of-range index is a routing
// bug, not a panic).
func (m *ShardMap) Owner(idx int) int {
	if idx < 0 || idx >= len(m.Assign) {
		return -1
	}
	return m.Assign[idx]
}

// Owned returns the store indices assigned to shard, in ascending global
// order — the ordered-merge discipline: every per-shard enumeration is a
// subsequence of the global one, so merging per-shard streams back in
// global order needs only one cursor per shard.
func (m *ShardMap) Owned(shard int) []int {
	var out []int
	for idx, s := range m.Assign {
		if s == shard {
			out = append(out, idx)
		}
	}
	return out
}

// Sizes returns the number of inputs owned by each shard.
func (m *ShardMap) Sizes() []int {
	sizes := make([]int, m.Shards)
	for _, s := range m.Assign {
		sizes[s]++
	}
	return sizes
}
