package dist

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

// Worker owns corpus shards and executes bandit steps for them. One
// Worker serves any number of concurrent runs (keyed by run ID); each
// run's state is the worker's view of that run's shard: the rebuilt task,
// the shard map, and a core.LocalExecutor threading the worker's own
// featcache and the run's fault injector — identical wrapping, in
// identical order, to the single-process engine, which is half of the
// byte-identity contract (the other half is the coordinator driving the
// unchanged engine loop).
//
// Workers are intentionally dumb: they never see the policy, the learner,
// or the curve. Everything a worker computes is a pure function of
// (corpus, task name, feature version, seed, input index), so any two
// workers given the same spec are interchangeable, and a step may be
// retried on the same worker without state drift.
type Worker struct {
	resolve func(name string) (corpus.Store, error)
	cache   *featcache.Cache
	reg     *obs.Registry

	mu   sync.Mutex
	runs map[string]*workerRun

	steps   *obs.Counter
	read    *obs.Histogram
	extract *obs.Histogram
}

type workerRun struct {
	shard  int
	label  string // "w<shard>", the dist.step fault key
	sm     *ShardMap
	exec   *core.LocalExecutor
	faults *fault.Injector
	steps  atomic.Int64
}

// NewWorker returns a worker resolving corpus names through resolve
// (the server passes its corpus registry; the local transport a closure
// over one store). cache is the worker's own extraction-cache view (nil
// for none); reg receives the worker's metrics (nil for none).
func NewWorker(resolve func(name string) (corpus.Store, error), cache *featcache.Cache, reg *obs.Registry) *Worker {
	w := &Worker{resolve: resolve, cache: cache, runs: map[string]*workerRun{}}
	if reg != nil {
		w.reg = reg
		w.steps = reg.Counter("dist_worker_steps", "Bandit steps executed by this worker.")
		const name, help = "dist_worker_phase_seconds", "Worker-side step time by phase."
		w.read = reg.HistogramL(name, help, "phase", "read", obs.LatencyBuckets)
		w.extract = reg.HistogramL(name, help, "phase", "extract", obs.LatencyBuckets)
	}
	return w
}

// Init sets up (or replaces — Init is idempotent, so a retried call is
// harmless) one run's shard view.
func (w *Worker) Init(req InitRequest) (InitResponse, error) {
	if req.RunID == "" {
		return InitResponse{}, fmt.Errorf("dist: init: empty run ID")
	}
	if req.Shard < 0 || req.Shard >= req.Shards {
		return InitResponse{}, fmt.Errorf("dist: init: shard %d out of range for %d shards", req.Shard, req.Shards)
	}
	store, err := w.resolve(req.Corpus)
	if err != nil {
		return InitResponse{}, fmt.Errorf("dist: init: corpus %q: %w", req.Corpus, err)
	}
	// The task rebuild uses the exact (name, store, version, seed-split)
	// recipe every front end uses, so this worker's pool/holdout split and
	// feature code are byte-identical to the coordinator's.
	task, _, err := workload.Build(req.Task, store, req.FeatureVersion, rng.New(req.Seed).Split("task"))
	if err != nil {
		return InitResponse{}, fmt.Errorf("dist: init: %w", err)
	}
	faults, err := fault.Parse(req.FaultSpec, req.FaultSeed)
	if err != nil {
		return InitResponse{}, fmt.Errorf("dist: init: %w", err)
	}
	sm, err := NewShardMap(store.Len(), req.Shards, req.Seed)
	if err != nil {
		return InitResponse{}, fmt.Errorf("dist: init: %w", err)
	}
	run := &workerRun{
		shard:  req.Shard,
		label:  "w" + strconv.Itoa(req.Shard),
		sm:     sm,
		exec:   core.NewLocalExecutor(task, w.cache, faults),
		faults: faults,
	}
	owned, ownedHoldout := 0, 0
	for _, s := range sm.Assign {
		if s == req.Shard {
			owned++
		}
	}
	for _, idx := range task.HoldoutIdx {
		if sm.Owner(idx) == req.Shard {
			ownedHoldout++
		}
	}
	if w.reg != nil {
		w.reg.GaugeL("dist_shard_inputs", "Store indices owned by the shard.",
			"shard", strconv.Itoa(req.Shard)).Set(int64(owned))
	}
	w.mu.Lock()
	w.runs[req.RunID] = run
	w.mu.Unlock()
	return InitResponse{StoreLen: store.Len(), OwnedInputs: owned, OwnedHoldout: ownedHoldout}, nil
}

// requestSpanCap bounds a request-scoped tracer: work RPCs emit one span
// per request, so anything above a handful is headroom.
const requestSpanCap = 16

// startRequestSpan opens a request-scoped tracer when the request carried
// a parseable traceparent, with one span named name parented at the
// propagated span ID. A missing or malformed traceparent returns nils —
// the request runs untraced, never failed over telemetry. The caller ends
// the span and ships tr.Snapshot() in the response; the coordinator's
// Import remaps the worker-local IDs into its own buffer.
func startRequestSpan(traceparent, name string, attrs ...otrace.Attr) (*otrace.Tracer, *otrace.SpanRef) {
	if traceparent == "" {
		return nil, nil
	}
	_, parent, ok := otrace.ParseTraceparent(traceparent)
	if !ok {
		return nil, nil
	}
	tr := otrace.New(traceparent, requestSpanCap)
	return tr, tr.Start(parent, name, attrs...)
}

func (w *Worker) run(id string) (*workerRun, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	run, ok := w.runs[id]
	if !ok {
		return nil, fmt.Errorf("dist: unknown run %q on this worker (init first)", id)
	}
	return run, nil
}

// Holdout extracts the holdout inputs the run's shard owns, in ascending
// global index order, through the run's wrapped task — cache and fault
// behavior identical to a single-process holdout build over the same
// inputs.
func (w *Worker) Holdout(req HoldoutRequest) (HoldoutResponse, error) {
	run, err := w.run(req.RunID)
	if err != nil {
		return HoldoutResponse{}, err
	}
	tr, ref := startRequestSpan(req.Traceparent, "worker.holdout",
		otrace.Int("shard", int64(run.shard)))
	t0 := time.Now()
	task := run.exec.Task()
	// HoldoutIdx is iterated sorted by global index (Owned order), not in
	// the task's shuffled holdout order: the canonical order lets the
	// coordinator verify merge alignment without trusting worker iteration.
	ownedSet := map[int]bool{}
	for _, idx := range task.HoldoutIdx {
		if run.sm.Owner(idx) == run.shard {
			ownedSet[idx] = true
		}
	}
	var resp HoldoutResponse
	for idx := 0; idx < task.Store.Len(); idx++ {
		if !ownedSet[idx] {
			continue
		}
		res, id, err := task.ExtractHoldout(idx)
		item := HoldoutItem{Idx: idx, InputID: id}
		if err != nil {
			item.Skip = err.Error()
		} else {
			item.Result = res
		}
		resp.Items = append(resp.Items, item)
	}
	if tr != nil {
		ref.End(otrace.Int("items", int64(len(resp.Items))),
			otrace.Dur("ns.holdout", time.Since(t0)))
		resp.Spans, _ = tr.Snapshot()
	}
	return resp, nil
}

// Step executes one bandit step: fire the worker's dist.step fault gate
// (a dead worker errors every step; a slow one sleeps), check ownership,
// then read + extract through the shared local executor. A panic anywhere
// in the step (an injected panic rule at dist.step, most likely) is
// recovered into an error so both transports surface it as a failed step
// with the same message, rather than http tearing down the connection
// while local crashes the process.
func (w *Worker) Step(req StepRequest) (StepResponse, error) {
	run, err := w.run(req.RunID)
	if err != nil {
		return StepResponse{}, err
	}
	tr, ref := startRequestSpan(req.Traceparent, "worker.step",
		otrace.Int("shard", int64(run.shard)), otrace.Int("step", int64(req.Step)))
	resp, err := w.stepOne(run, req.Step, req.Idx)
	if tr != nil && err == nil {
		ref.End(otrace.Dur("ns.read", time.Duration(resp.ReadNanos)),
			otrace.Dur("ns.extract", time.Duration(resp.ExtractNanos)))
		resp.Spans, _ = tr.Snapshot()
	}
	return resp, err
}

// stepOne executes one step for a looked-up run: the shared body of Step
// and StepBatch, so a batched step behaves — fault gate, ownership check,
// panic isolation, error text — exactly like a per-item Step call.
func (w *Worker) stepOne(run *workerRun, step, idx int) (resp StepResponse, err error) {
	defer func() {
		if p := recover(); p != nil {
			resp, err = StepResponse{}, fmt.Errorf("dist: worker step panic: %v", p)
		}
	}()
	if ferr := run.faults.Fire(fault.SiteDistStep, run.label); ferr != nil {
		return StepResponse{}, ferr
	}
	if owner := run.sm.Owner(idx); owner != run.shard {
		return StepResponse{}, fmt.Errorf("dist: input %d belongs to shard %d, not %d (misrouted step)", idx, owner, run.shard)
	}
	out, err := run.exec.ExecuteStep(context.Background(), step, idx)
	if err != nil {
		return StepResponse{}, err
	}
	run.steps.Add(1)
	if w.steps != nil {
		w.steps.Inc()
		w.read.Observe(float64(out.ReadNanos) / 1e9)
		w.extract.Observe(float64(out.ExtractNanos) / 1e9)
	}
	return StepResponse{
		InputID:      out.InputID,
		ReadErr:      out.ReadErr,
		CostNanos:    int64(out.Cost),
		ExtractErr:   out.ExtractErr,
		Panicked:     out.Panicked,
		CacheHit:     out.CacheHit,
		ReadNanos:    out.ReadNanos,
		ExtractNanos: out.ExtractNanos,
		Result:       out.Res,
	}, nil
}

// StepBatch executes a batch of steps in one call. The run lookup and
// request validation fail the whole call (there is nothing per-item about
// them); everything after runs per item through stepOne, with each item's
// failure captured in its StepBatchItem.Err so the rest of the batch
// proceeds.
func (w *Worker) StepBatch(req StepBatchRequest) (StepBatchResponse, error) {
	if len(req.Steps) != len(req.Idxs) {
		return StepBatchResponse{}, fmt.Errorf("dist: step batch has %d steps for %d inputs", len(req.Steps), len(req.Idxs))
	}
	run, err := w.run(req.RunID)
	if err != nil {
		return StepBatchResponse{}, err
	}
	tr, ref := startRequestSpan(req.Traceparent, "worker.step_batch",
		otrace.Int("shard", int64(run.shard)))
	var readNs, extractNs int64
	resp := StepBatchResponse{Items: make([]StepBatchItem, len(req.Idxs))}
	for j, idx := range req.Idxs {
		sr, err := w.stepOne(run, req.Steps[j], idx)
		if err != nil {
			resp.Items[j].Err = err.Error()
			continue
		}
		readNs += sr.ReadNanos
		extractNs += sr.ExtractNanos
		resp.Items[j].StepResponse = sr
	}
	if tr != nil {
		ref.End(otrace.Int("steps", int64(len(req.Idxs))),
			otrace.Dur("ns.read", time.Duration(readNs)),
			otrace.Dur("ns.extract", time.Duration(extractNs)))
		resp.Spans, _ = tr.Snapshot()
	}
	return resp, nil
}

// Finish releases the run's state and reports its tallies. Finishing an
// unknown run is not an error (the coordinator may retry a finish whose
// first response was lost).
func (w *Worker) Finish(req FinishRequest) (FinishResponse, error) {
	w.mu.Lock()
	run, ok := w.runs[req.RunID]
	delete(w.runs, req.RunID)
	w.mu.Unlock()
	if !ok {
		return FinishResponse{}, nil
	}
	st := run.exec.Stats()
	return FinishResponse{
		Steps:            int(run.steps.Load()),
		CacheHits:        st.CacheHits,
		CacheMisses:      st.CacheMisses,
		CacheLookupNanos: st.CacheLookupNanos,
		Parts:            st.Parts,
	}, nil
}
