package dist

import (
	"context"
	"fmt"
	"testing"

	"zombie/internal/core"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/otrace"
)

func tracedEngine(t *testing.T, seed int64, maxInputs, batch int, tr *otrace.Tracer) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Config{Seed: seed, MaxInputs: maxInputs, BatchSize: batch, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestTracingIdentityOverHTTPShards is the distributed half of the
// tracing identity contract: at 1 and 4 shards, over the JSON/HTTP
// transport with real serialization, a traced run's curve, arms, and
// quarantine list are byte-identical to an untraced run of the same spec.
func TestTracingIdentityOverHTTPShards(t *testing.T) {
	const seed, maxInputs, batch = 20160516, 60, 4
	store, task, groups := testSetup(t, 120, seed)
	for _, shards := range []int{1, 4} {
		plain, err := Run(context.Background(),
			tracedEngine(t, seed, maxInputs, batch, nil),
			newHTTPTestTransport(t, store, shards),
			Spec{RunID: "t-plain", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
		if err != nil {
			t.Fatalf("shards=%d untraced: %v", shards, err)
		}
		tr := otrace.New("t-traced", 0)
		traced, err := Run(context.Background(),
			tracedEngine(t, seed, maxInputs, batch, tr),
			newHTTPTestTransport(t, store, shards),
			Spec{RunID: "t-traced", Task: "wiki", Seed: seed, Shards: shards, Tracer: tr}, task, groups)
		if err != nil {
			t.Fatalf("shards=%d traced: %v", shards, err)
		}
		assertSameRun(t, fmt.Sprintf("shards=%d tracing on/off", shards), plain.RunResult, traced.RunResult)
		if tr.Len() == 0 {
			t.Fatalf("shards=%d: traced run recorded no spans", shards)
		}
	}
}

// TestDistSpanStitching pins the cross-process tree shape: worker-side
// spans come back over the wire and land under the coordinator's rpc
// spans, which nest under the engine's batch and holdout spans — one
// connected tree for the whole distributed run — and the cost summary
// gains per-shard and per-part cells from the stitched attrs.
func TestDistSpanStitching(t *testing.T) {
	const seed, maxInputs, batch, shards = 7, 40, 4, 2
	store, task, groups := testSetup(t, 100, seed)
	cache, err := featcache.Open(featcache.Config{MaxBytes: 32 << 20}, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	tr := otrace.New("t-stitch", 0)
	local := NewLocalTransport(store, shards, cache, nil)
	defer local.Close()
	if _, err := Run(context.Background(),
		tracedEngine(t, seed, maxInputs, batch, tr), local,
		Spec{RunID: "t-stitch", Task: "wiki", Seed: seed, Shards: shards, Tracer: tr}, task, groups); err != nil {
		t.Fatal(err)
	}

	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("small run dropped %d spans", dropped)
	}
	byID := map[otrace.SpanID]otrace.Span{}
	counts := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		counts[sp.Name]++
	}
	parentName := func(sp otrace.Span) string { return byID[sp.Parent].Name }
	if counts["worker.step_batch"] == 0 || counts["worker.holdout"] != shards {
		t.Fatalf("missing worker spans in census: %v", counts)
	}
	shardsSeen := map[int64]bool{}
	for _, sp := range spans {
		switch sp.Name {
		case "worker.step_batch":
			if pn := parentName(sp); pn != "dist.step_batch" {
				t.Fatalf("worker.step_batch parented under %q, want dist.step_batch", pn)
			}
			s, ok := sp.AttrInt("shard")
			if !ok {
				t.Fatalf("worker.step_batch span missing shard attr: %v", sp.Attrs)
			}
			shardsSeen[s] = true
			if _, ok := sp.AttrInt("ns.extract"); !ok {
				t.Fatalf("worker.step_batch span missing ns.extract: %v", sp.Attrs)
			}
		case "dist.step_batch":
			if pn := parentName(sp); pn != "batch" {
				t.Fatalf("dist.step_batch parented under %q, want batch", pn)
			}
		case "worker.holdout":
			if pn := parentName(sp); pn != "dist.holdout" {
				t.Fatalf("worker.holdout parented under %q, want dist.holdout", pn)
			}
		case "dist.holdout":
			if pn := parentName(sp); pn != "holdout" {
				t.Fatalf("dist.holdout parented under %q, want holdout", pn)
			}
		case "part":
			if pn := parentName(sp); pn != "dist.finish" {
				t.Fatalf("dist part span parented under %q, want dist.finish", pn)
			}
		}
	}
	if len(shardsSeen) != shards {
		t.Fatalf("worker spans cover shards %v, want all %d", shardsSeen, shards)
	}

	// The cost summary built from the stitched tree attributes work to
	// where it ran: per-shard read/extract cells from worker spans, and
	// per-part extract cells (shard-tagged) from the finish-time part
	// spans the cached workers reported.
	cost := otrace.BuildCost(spans, dropped)
	shardExtract, partCells := map[int]bool{}, 0
	for _, c := range cost.Cells {
		if c.Phase == "extract" && c.Shard >= 0 && c.Part == "" {
			shardExtract[c.Shard] = true
		}
		if c.Part != "" && c.Shard >= 0 {
			partCells++
		}
	}
	if len(shardExtract) != shards {
		t.Fatalf("per-shard extract cells cover %v, want all %d shards: %+v", shardExtract, shards, cost.Cells)
	}
	if partCells == 0 {
		t.Fatalf("no shard-tagged per-part cells in cost summary: %+v", cost.Cells)
	}
}
