package dist

import (
	"encoding/base64"
	"fmt"

	"zombie/internal/featurepipe"
	"zombie/internal/otrace"
)

// Wire types shared by every transport. The local transport passes them
// by value with the native Result fields populated; the http transport
// marshals them as JSON, carrying extraction results as base64 of the
// versioned featurepipe.ResultCodec binary format — the same codec the
// extraction cache trusts on disk. The codec round-trips float bits
// exactly, so a decoded result is byte-identical to the native one; the
// transport-identity tests assert exactly that.
//
// Every request carries an optional Traceparent (W3C trace-context
// format); the http transport mirrors it into the `traceparent` HTTP
// header. Workers that find a parseable value open child spans under the
// propagated parent and return them in the response's Spans field; the
// coordinator stitches those into its own buffer, producing one run-wide
// span tree across processes. Tracing is strictly observational: a worker
// given no (or a malformed) traceparent executes identically and returns
// no spans.

// InitRequest asks a worker to set up one run's shard view: rebuild the
// task from (corpus, task, feature version, seed) — the same triple every
// front end uses, so all workers and the coordinator hold byte-identical
// tasks — compute the shard map, and wrap its executor with the run's
// fault injector.
type InitRequest struct {
	RunID          string `json:"run_id"`
	Corpus         string `json:"corpus"`
	Task           string `json:"task"`
	FeatureVersion int    `json:"feature_version"`
	Seed           int64  `json:"seed"`
	Shards         int    `json:"shards"`
	Shard          int    `json:"shard"`
	FaultSpec      string `json:"faults,omitempty"`
	FaultSeed      int64  `json:"fault_seed,omitempty"`
	Traceparent    string `json:"traceparent,omitempty"`
}

// InitResponse reports the worker's view of the shard. StoreLen is the
// worker's corpus size; the coordinator rejects the run when it disagrees
// with its own (the two processes are not looking at the same artifact,
// so the shard maps would silently diverge).
type InitResponse struct {
	StoreLen     int `json:"store_len"`
	OwnedInputs  int `json:"owned_inputs"`
	OwnedHoldout int `json:"owned_holdout"`
}

// HoldoutRequest asks a worker to extract the holdout inputs its shard
// owns.
type HoldoutRequest struct {
	RunID       string `json:"run_id"`
	Traceparent string `json:"traceparent,omitempty"`
}

// HoldoutItem is one owned holdout input's extraction: either a result
// (possibly unproduced) or a skip reason, tagged with the global store
// index so the coordinator can verify merge alignment.
type HoldoutItem struct {
	Idx     int    `json:"idx"`
	InputID string `json:"input_id"`
	// Skip carries the tolerant build's skip reason; when non-empty the
	// result fields are meaningless.
	Skip string `json:"skip,omitempty"`
	// ResultB64 is the codec-encoded result on the wire; Result is the
	// native value in-process. EncodeResults/DecodeResults convert.
	ResultB64 string             `json:"result,omitempty"`
	Result    featurepipe.Result `json:"-"`
}

// HoldoutResponse lists the worker's owned holdout items in ascending
// global index order (the order Task.HoldoutIdx visits them is the
// coordinator's business; workers report in a canonical order and the
// coordinator merges).
type HoldoutResponse struct {
	Items []HoldoutItem `json:"items"`
	Spans []otrace.Span `json:"spans,omitempty"`
}

// StepRequest asks the owning worker to execute one bandit step: read
// store index Idx and extract it. Step is the loop's step counter, for
// tracing and fault keying symmetry with the engine.
type StepRequest struct {
	RunID       string `json:"run_id"`
	Step        int    `json:"step"`
	Idx         int    `json:"idx"`
	Traceparent string `json:"traceparent,omitempty"`
}

// StepResponse mirrors core.StepOutcome on the wire.
type StepResponse struct {
	InputID      string `json:"input_id,omitempty"`
	ReadErr      string `json:"read_err,omitempty"`
	CostNanos    int64  `json:"cost_ns,omitempty"`
	ExtractErr   string `json:"extract_err,omitempty"`
	Panicked     bool   `json:"panicked,omitempty"`
	CacheHit     bool   `json:"cache_hit,omitempty"`
	ReadNanos    int64  `json:"read_ns,omitempty"`
	ExtractNanos int64  `json:"extract_ns,omitempty"`

	ResultB64 string             `json:"result,omitempty"`
	Result    featurepipe.Result `json:"-"`

	// Spans are the worker-side spans for this step (set only on the
	// top-level Step response, never on batch items — a batch's spans ride
	// on the StepBatchResponse).
	Spans []otrace.Span `json:"spans,omitempty"`
}

// StepBatchRequest asks the owning worker to execute a whole batch of
// bandit steps in one call — the transport-level half of Config.BatchSize:
// the coordinator groups each engine batch by owning shard and sends one
// StepBatch per shard instead of one Step per input. Steps[j] is the
// engine loop's step counter for Idxs[j], exactly the number a per-item
// Step call would carry; the slices are parallel and must have equal
// length.
type StepBatchRequest struct {
	RunID       string `json:"run_id"`
	Steps       []int  `json:"steps"`
	Idxs        []int  `json:"idxs"`
	Traceparent string `json:"traceparent,omitempty"`
}

// StepBatchItem is one input's outcome inside a batch: either a
// StepResponse or a worker-produced error. Err carries exactly the message
// a per-item Step call would have returned as its error — per-item
// failures (an injected dist.step fault, a misrouted input, a worker
// panic) ride inside a successful batch response so one bad input cannot
// poison its batchmates.
type StepBatchItem struct {
	Err string `json:"error,omitempty"`
	StepResponse
}

// StepBatchResponse lists the batch outcomes positionally: Items[j]
// belongs to request Idxs[j].
type StepBatchResponse struct {
	Items []StepBatchItem `json:"items"`
	Spans []otrace.Span   `json:"spans,omitempty"`
}

// FinishRequest releases a run's state on the worker and collects its
// execution-side tallies.
type FinishRequest struct {
	RunID       string `json:"run_id"`
	Traceparent string `json:"traceparent,omitempty"`
}

// FinishResponse reports one worker's run totals. Parts carries the
// shard's per-recipe-part extraction cost tallies (cached workers only);
// the coordinator turns them into per-shard "part" spans so the run's
// cost summary can attribute extraction time by part × shard.
type FinishResponse struct {
	Steps            int                    `json:"steps"`
	CacheHits        int64                  `json:"cache_hits"`
	CacheMisses      int64                  `json:"cache_misses"`
	CacheLookupNanos int64                  `json:"cache_lookup_ns"`
	Parts            []featurepipe.PartCost `json:"parts,omitempty"`
}

// traceCarrier lets the http transport read a request's propagated trace
// context without knowing the concrete request type, mirroring it into
// the standard header so any HTTP-aware middleware sees it too.
type traceCarrier interface{ traceparent() string }

func (r InitRequest) traceparent() string      { return r.Traceparent }
func (r HoldoutRequest) traceparent() string   { return r.Traceparent }
func (r StepRequest) traceparent() string      { return r.Traceparent }
func (r StepBatchRequest) traceparent() string { return r.Traceparent }
func (r FinishRequest) traceparent() string    { return r.Traceparent }

var resultCodec featurepipe.ResultCodec

// EncodeResult fills ResultB64 from the native Result for the wire.
func (r *StepResponse) EncodeResult() error {
	b, err := resultCodec.Encode(r.Result)
	if err != nil {
		return fmt.Errorf("dist: encode step result: %w", err)
	}
	r.ResultB64 = base64.StdEncoding.EncodeToString(b)
	return nil
}

// DecodeResult fills the native Result from ResultB64 after unmarshaling.
func (r *StepResponse) DecodeResult() error {
	if r.ResultB64 == "" {
		return nil
	}
	res, err := decodeResultB64(r.ResultB64)
	if err != nil {
		return fmt.Errorf("dist: decode step result: %w", err)
	}
	r.Result = res
	return nil
}

// EncodeResults fills every non-errored item's ResultB64 for the wire.
func (b *StepBatchResponse) EncodeResults() error {
	for i := range b.Items {
		it := &b.Items[i]
		if it.Err != "" {
			continue
		}
		if err := it.EncodeResult(); err != nil {
			return fmt.Errorf("dist: batch item %d: %w", i, err)
		}
	}
	return nil
}

// DecodeResults fills every non-errored item's native Result after
// unmarshaling.
func (b *StepBatchResponse) DecodeResults() error {
	for i := range b.Items {
		it := &b.Items[i]
		if it.Err != "" {
			continue
		}
		if err := it.DecodeResult(); err != nil {
			return fmt.Errorf("dist: batch item %d: %w", i, err)
		}
	}
	return nil
}

// EncodeResults fills every item's ResultB64 for the wire.
func (h *HoldoutResponse) EncodeResults() error {
	for i := range h.Items {
		it := &h.Items[i]
		if it.Skip != "" {
			continue
		}
		b, err := resultCodec.Encode(it.Result)
		if err != nil {
			return fmt.Errorf("dist: encode holdout result for input %d: %w", it.Idx, err)
		}
		it.ResultB64 = base64.StdEncoding.EncodeToString(b)
	}
	return nil
}

// DecodeResults fills every item's native Result after unmarshaling.
func (h *HoldoutResponse) DecodeResults() error {
	for i := range h.Items {
		it := &h.Items[i]
		if it.Skip != "" || it.ResultB64 == "" {
			continue
		}
		res, err := decodeResultB64(it.ResultB64)
		if err != nil {
			return fmt.Errorf("dist: decode holdout result for input %d: %w", it.Idx, err)
		}
		it.Result = res
	}
	return nil
}

func decodeResultB64(s string) (featurepipe.Result, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return featurepipe.Result{}, err
	}
	v, err := resultCodec.Decode(b)
	if err != nil {
		return featurepipe.Result{}, err
	}
	res, ok := v.(featurepipe.Result)
	if !ok {
		return featurepipe.Result{}, fmt.Errorf("codec returned %T", v)
	}
	return res, nil
}
