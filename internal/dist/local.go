package dist

import (
	"context"
	"sync"

	"zombie/internal/corpus"
	"zombie/internal/featcache"
	"zombie/internal/obs"
)

// LocalTransport runs N workers in-process over one store: the
// single-binary sharding mode behind `zombie -shards N`, and the
// reference implementation the http transport is tested against. Each
// worker is served by its own goroutine fed through a channel, so calls
// to one worker serialize exactly like a remote worker's request loop
// while different workers proceed concurrently — the same concurrency
// shape as real deployment, minus the sockets.
type LocalTransport struct {
	clients   []Client
	closeOnce sync.Once
}

// NewLocalTransport starts shards in-process workers over store. cache is
// shared by every worker (the extraction cache is content-addressed and
// concurrency-safe, and cache state cannot affect results); reg receives
// the workers' metrics. Both may be nil.
func NewLocalTransport(store corpus.Store, shards int, cache *featcache.Cache, reg *obs.Registry) *LocalTransport {
	resolve := func(string) (corpus.Store, error) { return store, nil }
	t := &LocalTransport{}
	for i := 0; i < shards; i++ {
		c := &localClient{w: NewWorker(resolve, cache, reg), calls: make(chan func())}
		go func() {
			for fn := range c.calls {
				fn()
			}
		}()
		t.clients = append(t.clients, c)
	}
	return t
}

func (t *LocalTransport) Name() string      { return "local" }
func (t *LocalTransport) Clients() []Client { return t.clients }

// Close stops the worker goroutines. Calls in flight complete first.
func (t *LocalTransport) Close() error {
	t.closeOnce.Do(func() {
		for _, c := range t.clients {
			close(c.(*localClient).calls)
		}
	})
	return nil
}

// localClient funnels calls onto its worker's goroutine.
type localClient struct {
	w     *Worker
	calls chan func()
}

// do runs fn on the worker goroutine and waits for it, honoring ctx while
// queued (a call already executing runs to completion, like a request a
// remote server has already accepted).
func (c *localClient) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	select {
	case c.calls <- func() { fn(); close(done) }:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *localClient) Init(ctx context.Context, req InitRequest) (InitResponse, error) {
	var resp InitResponse
	var err error
	if derr := c.do(ctx, func() { resp, err = c.w.Init(req) }); derr != nil {
		return InitResponse{}, derr
	}
	return resp, err
}

func (c *localClient) Holdout(ctx context.Context, req HoldoutRequest) (HoldoutResponse, error) {
	var resp HoldoutResponse
	var err error
	if derr := c.do(ctx, func() { resp, err = c.w.Holdout(req) }); derr != nil {
		return HoldoutResponse{}, derr
	}
	return resp, err
}

func (c *localClient) Step(ctx context.Context, req StepRequest) (StepResponse, error) {
	var resp StepResponse
	var err error
	if derr := c.do(ctx, func() { resp, err = c.w.Step(req) }); derr != nil {
		return StepResponse{}, derr
	}
	return resp, err
}

func (c *localClient) StepBatch(ctx context.Context, req StepBatchRequest) (StepBatchResponse, error) {
	var resp StepBatchResponse
	var err error
	if derr := c.do(ctx, func() { resp, err = c.w.StepBatch(req) }); derr != nil {
		return StepBatchResponse{}, derr
	}
	return resp, err
}

func (c *localClient) Finish(ctx context.Context, req FinishRequest) (FinishResponse, error) {
	var resp FinishResponse
	var err error
	if derr := c.do(ctx, func() { resp, err = c.w.Finish(req) }); derr != nil {
		return FinishResponse{}, derr
	}
	return resp, err
}
