package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zombie/internal/corpus"
)

func TestShardMapDeterministicAndBalanced(t *testing.T) {
	a, err := NewShardMap(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardMap(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n, shards, seed) produced different maps")
	}
	c, _ := NewShardMap(100, 4, 8)
	if reflect.DeepEqual(a.Assign, c.Assign) {
		t.Fatal("different seeds produced identical assignments")
	}
	sizes := a.Sizes()
	for s, n := range sizes {
		if n != 25 {
			t.Fatalf("shard %d owns %d of 100 inputs over 4 shards, want 25", s, n)
		}
	}
	// Owned lists are ascending and partition [0, n).
	seen := map[int]bool{}
	for s := 0; s < a.Shards; s++ {
		prev := -1
		for _, idx := range a.Owned(s) {
			if idx <= prev {
				t.Fatalf("shard %d Owned not ascending: %d after %d", s, idx, prev)
			}
			if seen[idx] {
				t.Fatalf("input %d owned by two shards", idx)
			}
			seen[idx] = true
			prev = idx
			if a.Owner(idx) != s {
				t.Fatalf("Owner(%d) = %d, want %d", idx, a.Owner(idx), s)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("shards cover %d of 100 inputs", len(seen))
	}
}

func TestShardMapGuards(t *testing.T) {
	if _, err := NewShardMap(10, 0, 1); err == nil {
		t.Fatal("shards = 0 accepted")
	}
	if _, err := NewShardMap(10, -3, 1); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := NewShardMap(-1, 2, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	// More shards than inputs is a valid map with empty shards, not an
	// error: the coordinator routes what exists and idles the rest.
	m, err := NewShardMap(3, 8, 42)
	if err != nil {
		t.Fatalf("shards > n rejected: %v", err)
	}
	sizes := m.Sizes()
	total, empty := 0, 0
	for _, n := range sizes {
		total += n
		if n == 0 {
			empty++
		}
	}
	if total != 3 || empty != 5 {
		t.Fatalf("sizes = %v, want 3 owned across 8 shards with 5 empty", sizes)
	}
	if m.Owner(99) != -1 || m.Owner(-1) != -1 {
		t.Fatal("out-of-range Owner should be -1")
	}
	// An empty corpus still maps (every shard empty).
	if m, err = NewShardMap(0, 4, 1); err != nil || len(m.Assign) != 0 {
		t.Fatalf("n = 0: map %v err %v", m, err)
	}
}

// TestShardMapTolerantReadStable pins the guard the satellite task names:
// a corpus whose tolerant JSONL read dropped lines must still produce a
// valid, deterministic shard map — two processes loading the same damaged
// artifact agree on the survivors, hence on the map.
func TestShardMapTolerantReadStable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "damaged.jsonl")
	var data []byte
	for i := 0; i < 20; i++ {
		if i%5 == 4 {
			data = append(data, []byte("{torn json\n")...)
			continue
		}
		line := fmt.Sprintf(`{"id":"in-%d","kind":0,"text":"doc %d","truth":{"class":%d}}`+"\n", i, i, i%2)
		data = append(data, []byte(line)...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	load := func() int {
		ins, skipped, err := corpus.ReadJSONLTolerant(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(skipped) == 0 {
			t.Fatal("expected dropped lines")
		}
		return len(ins)
	}
	n1, n2 := load(), load()
	if n1 != n2 {
		t.Fatalf("tolerant read unstable: %d vs %d survivors", n1, n2)
	}
	m1, err := NewShardMap(n1, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewShardMap(n2, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("same survivor count produced different maps")
	}
	if got := len(m1.Assign); got != n1 {
		t.Fatalf("map covers %d inputs, want %d survivors", got, n1)
	}
}
