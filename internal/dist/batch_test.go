package dist

import (
	"context"
	"testing"

	"zombie/internal/core"
)

func testBatchEngine(t *testing.T, seed int64, maxInputs, batch int) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Config{Seed: seed, MaxInputs: maxInputs, BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBatchedShardIdentity extends the headline shard invariant to K>1:
// a batched run — where the coordinator groups each engine batch into one
// StepBatch RPC per owning shard — must be byte-identical to the
// single-process batched run at any shard count.
func TestBatchedShardIdentity(t *testing.T) {
	const seed, maxInputs, batch = 20160516, 96, 8
	store, task, groups := testSetup(t, 160, seed)
	eng := testBatchEngine(t, seed, maxInputs, batch)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if ref.InputsProcessed != maxInputs {
		t.Fatalf("reference run too small to be meaningful: %+v", ref)
	}
	for _, shards := range []int{1, 2, 4} {
		tr := NewLocalTransport(store, shards, nil, nil)
		res, err := Run(context.Background(), eng, tr,
			Spec{RunID: "t-batch", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
		tr.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		assertSameRun(t, tr.Name(), ref, res.RunResult)
		steps := 0
		for _, ws := range res.Workers {
			steps += ws.Steps
		}
		if steps != maxInputs {
			t.Fatalf("shards=%d: workers report %d steps, want %d", shards, steps, maxInputs)
		}
	}
}

// TestBatchedHTTPTransportIdentity pins the K>1 transport half: the
// StepBatch RPC over JSON/HTTP (with per-item codec round trips) must
// reproduce the in-process local transport and the single-process run
// byte-for-byte.
func TestBatchedHTTPTransportIdentity(t *testing.T) {
	const seed, maxInputs, shards, batch = 20160516, 72, 2, 8
	store, task, groups := testSetup(t, 140, seed)
	eng := testBatchEngine(t, seed, maxInputs, batch)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}

	local := NewLocalTransport(store, shards, nil, nil)
	defer local.Close()
	lres, err := Run(context.Background(), eng, local,
		Spec{RunID: "t-bl", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	httpT := newHTTPTestTransport(t, store, shards)
	defer httpT.Close()
	hres, err := Run(context.Background(), eng, httpT,
		Spec{RunID: "t-bh", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "local", ref, lres.RunResult)
	assertSameRun(t, "http", ref, hres.RunResult)
}
