package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"zombie/internal/core"
	"zombie/internal/fault"
	"zombie/internal/obs"
)

// deadWorkerSeed scans fault seeds for one where, under the given spec,
// worker w1 fails every step and w0 none — fault decisions are pure
// hashes of (seed, site, id), so the scan is deterministic and cheap.
func deadWorkerSeed(t *testing.T, spec string) int64 {
	t.Helper()
	for seed := int64(1); seed < 4000; seed++ {
		inj, err := fault.Parse(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, _, w0 := inj.Check(fault.SiteDistStep, "w0")
		kind, _, w1 := inj.Check(fault.SiteDistStep, "w1")
		if !w0 && w1 && kind == fault.KindError {
			return seed
		}
	}
	t.Fatal("no fault seed kills exactly w1 under " + spec)
	return 0
}

// TestDeadWorkerTripsFailureBudget kills one of two workers mid-run (an
// error rule at dist.step makes every step routed to w1 fail, surviving
// the coordinator's retries) and asserts the run degrades exactly like a
// single-process run over a half-broken corpus: StopFailed once the
// failure budget trips, with the partial merged curve intact — and that
// the local and http transports fail byte-identically.
func TestDeadWorkerTripsFailureBudget(t *testing.T) {
	const spec = "dist.step:err=0.5"
	const seed, maxInputs, shards = 11, 80, 2
	fseed := deadWorkerSeed(t, spec)
	store, task, groups := testSetup(t, 160, seed)
	eng, err := core.New(core.Config{Seed: seed, MaxInputs: maxInputs, MaxFailureFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	dspec := Spec{
		RunID: "t-chaos", Task: "wiki", Seed: seed, Shards: shards,
		FaultSpec: spec, FaultSeed: fseed,
		Attempts: 2, Backoff: time.Millisecond,
		Obs: reg,
	}

	local := NewLocalTransport(store, shards, nil, nil)
	defer local.Close()
	lres, err := Run(context.Background(), eng, local, dspec, task, groups)
	if err != nil {
		t.Fatalf("local faulted run should degrade, not error: %v", err)
	}
	if lres.Stop != core.StopFailed {
		t.Fatalf("Stop = %v, want StopFailed with a dead worker and budget 0.25", lres.Stop)
	}
	if len(lres.Curve) == 0 {
		t.Fatal("StopFailed run lost its partial curve")
	}
	if lres.InputsProcessed >= maxInputs {
		t.Fatalf("processed all %d inputs; budget never tripped", maxInputs)
	}
	if len(lres.Quarantined) == 0 {
		t.Fatal("dead worker produced no quarantine entries")
	}
	for _, q := range lres.Quarantined {
		if q.Site != string(fault.SiteDistStep) {
			t.Fatalf("quarantine site %q, want %q", q.Site, fault.SiteDistStep)
		}
		if !strings.Contains(q.Reason, "injected error at dist.step on w1") {
			t.Fatalf("quarantine reason %q does not name the dead worker", q.Reason)
		}
	}
	// The coordinator retried the dead worker before quarantining: every
	// failed step burned Attempts calls on shard 1 and none on shard 0.
	if lres.Workers[1].FailedCalls == 0 || lres.Workers[1].RetriedCalls == 0 {
		t.Fatalf("worker 1 stats %+v record no failures", lres.Workers[1])
	}
	if lres.Workers[0].FailedCalls != 0 {
		t.Fatalf("healthy worker 0 stats %+v record failures", lres.Workers[0])
	}
	// The error counters carry both dimensions in the Prometheus
	// exposition: the dead worker's step failures appear as one
	// {method,worker} series, and the healthy worker exports none.
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `dist_rpc_errors{method="step",worker="1"}`) {
		t.Fatalf("exposition missing labeled error counter:\n%s", prom.String())
	}
	if strings.Contains(prom.String(), `worker="0"`) {
		t.Fatalf("healthy worker exported an error series:\n%s", prom.String())
	}
	if got := reg.FlatSnapshot()["dist_rpc_errors_step_1"]; got == 0 {
		t.Fatal("flat exposition missing folded dist_rpc_errors_step_1 key")
	}

	httpT := newHTTPTestTransport(t, store, shards)
	defer httpT.Close()
	hres, err := Run(context.Background(), eng, httpT, dspec, task, groups)
	if err != nil {
		t.Fatalf("http faulted run should degrade, not error: %v", err)
	}
	// Same curve, same quarantine list, same stop — the whole RunResult,
	// failure messages included, must not depend on the transport.
	assertSameRun(t, "http-vs-local chaos", lres.RunResult, hres.RunResult)
}

// TestLatencyInjectionPreservesBytes stalls every step on both workers
// without failing any: the run must complete with a result byte-identical
// to the unfaulted one — injected latency shifts wall time, never bytes.
func TestLatencyInjectionPreservesBytes(t *testing.T) {
	const seed, maxInputs, shards = 11, 30, 2
	store, task, groups := testSetup(t, 120, seed)
	eng := testEngine(t, seed, maxInputs)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewLocalTransport(store, shards, nil, nil)
	defer tr.Close()
	res, err := Run(context.Background(), eng, tr, Spec{
		RunID: "t-lat", Task: "wiki", Seed: seed, Shards: shards,
		FaultSpec: "dist.step:lat=2ms,latp=1", FaultSeed: 5,
	}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != ref.Stop {
		t.Fatalf("latency changed stop reason: %v vs %v", res.Stop, ref.Stop)
	}
	assertSameRun(t, "latency-injected", ref, res.RunResult)
}
