package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

// testSetup builds the exact task + groups every front end would build
// for (corpus, "wiki", version 0, seed): the dist workers rebuild the
// task from the same recipe, so this is the configuration under which
// byte-identity to the single-process engine is contractual.
func testSetup(t *testing.T, n int, seed int64) (corpus.Store, *featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	task, grouper, err := workload.Build("wiki", store, 0, rng.New(seed).Split("task"))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := grouper.Group(store, 6, rng.New(seed).Split("index"))
	if err != nil {
		t.Fatal(err)
	}
	return store, task, groups
}

func testEngine(t *testing.T, seed int64, maxInputs int) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Config{Seed: seed, MaxInputs: maxInputs})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// comparable strips the fields that legitimately differ between runs of
// the same spec (wall clock, phase timing) and keeps everything the
// determinism contract covers, curve included.
func comparable(r *core.RunResult) core.RunResult {
	c := *r
	c.WallTime = 0
	c.Phases = core.PhaseBreakdown{}
	return c
}

func assertSameRun(t *testing.T, label string, want, got *core.RunResult) {
	t.Helper()
	w, g := comparable(want), comparable(got)
	if !reflect.DeepEqual(w, g) {
		wj, _ := json.MarshalIndent(w, "", " ")
		gj, _ := json.MarshalIndent(g, "", " ")
		t.Fatalf("%s diverged from reference run:\nwant %s\ngot  %s", label, wj, gj)
	}
}

// distWorkerHandler serves a Worker over the same JSON shapes and error
// convention ({"error": "..."} on non-200) as the zombie-serve /dist/*
// endpoints, so the http transport is exercised end-to-end in-process.
func distWorkerHandler(w *Worker) http.Handler {
	writeJSON := func(rw http.ResponseWriter, status int, v any) {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(status)
		_ = json.NewEncoder(rw).Encode(v)
	}
	fail := func(rw http.ResponseWriter, err error) {
		writeJSON(rw, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/init", func(rw http.ResponseWriter, r *http.Request) {
		var req InitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(rw, err)
			return
		}
		resp, err := w.Init(req)
		if err != nil {
			fail(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /dist/holdout", func(rw http.ResponseWriter, r *http.Request) {
		var req HoldoutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(rw, err)
			return
		}
		resp, err := w.Holdout(req)
		if err == nil {
			err = resp.EncodeResults()
		}
		if err != nil {
			fail(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /dist/step", func(rw http.ResponseWriter, r *http.Request) {
		var req StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(rw, err)
			return
		}
		resp, err := w.Step(req)
		if err == nil {
			err = resp.EncodeResult()
		}
		if err != nil {
			fail(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /dist/step-batch", func(rw http.ResponseWriter, r *http.Request) {
		var req StepBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(rw, err)
			return
		}
		resp, err := w.StepBatch(req)
		if err == nil {
			err = resp.EncodeResults()
		}
		if err != nil {
			fail(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /dist/finish", func(rw http.ResponseWriter, r *http.Request) {
		var req FinishRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(rw, err)
			return
		}
		resp, err := w.Finish(req)
		if err != nil {
			fail(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	return mux
}

// newHTTPTestTransport spins shards workers behind httptest servers and
// returns an HTTPTransport pointed at them.
func newHTTPTestTransport(t *testing.T, store corpus.Store, shards int) *HTTPTransport {
	t.Helper()
	resolve := func(string) (corpus.Store, error) { return store, nil }
	addrs := make([]string, shards)
	for i := range addrs {
		srv := httptest.NewServer(distWorkerHandler(NewWorker(resolve, nil, nil)))
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return NewHTTPTransport(addrs)
}

// TestLocalTransportShardIdentity is the headline invariant: the same
// seed and shard map produce a byte-identical curve at any worker count,
// equal to the single-process engine's.
func TestLocalTransportShardIdentity(t *testing.T) {
	const seed, maxInputs = 20160516, 100
	store, task, groups := testSetup(t, 160, seed)
	eng := testEngine(t, seed, maxInputs)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Curve) < 2 || ref.InputsProcessed != maxInputs {
		t.Fatalf("reference run too small to be meaningful: %+v", ref)
	}
	for _, shards := range []int{1, 2, 4} {
		tr := NewLocalTransport(store, shards, nil, nil)
		res, err := Run(context.Background(), eng, tr,
			Spec{RunID: "t-local", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
		tr.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		assertSameRun(t, tr.Name(), ref, res.RunResult)
		steps := 0
		for _, ws := range res.Workers {
			steps += ws.Steps
		}
		if steps != maxInputs {
			t.Fatalf("shards=%d: workers report %d steps, want %d", shards, steps, maxInputs)
		}
		if shards > 1 {
			busy := 0
			for _, ws := range res.Workers {
				if ws.Steps > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Fatalf("shards=%d but only %d workers executed steps", shards, busy)
			}
		}
	}
}

// TestHTTPTransportIdentity pins the other half of the contract: the
// JSON/HTTP transport — real serialization, real sockets — produces the
// same bytes as local and as the single-process engine.
func TestHTTPTransportIdentity(t *testing.T) {
	const seed, maxInputs, shards = 20160516, 75, 2
	store, task, groups := testSetup(t, 140, seed)
	eng := testEngine(t, seed, maxInputs)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}

	local := NewLocalTransport(store, shards, nil, nil)
	defer local.Close()
	lres, err := Run(context.Background(), eng, local,
		Spec{RunID: "t-l", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	httpT := newHTTPTestTransport(t, store, shards)
	defer httpT.Close()
	hres, err := Run(context.Background(), eng, httpT,
		Spec{RunID: "t-h", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "local", ref, lres.RunResult)
	assertSameRun(t, "http", ref, hres.RunResult)
}

// TestMoreShardsThanInputs exercises the empty-shard guard end-to-end: a
// tiny corpus over many workers still runs, still matches the
// single-process curve, and idles the surplus workers.
func TestMoreShardsThanInputs(t *testing.T) {
	const seed, shards = 7, 8
	store, task, groups := testSetup(t, 40, seed)
	eng := testEngine(t, seed, 30)
	ref, err := eng.RunContext(context.Background(), task, groups)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewLocalTransport(store, shards, nil, nil)
	defer tr.Close()
	res, err := Run(context.Background(), eng, tr,
		Spec{RunID: "t-tiny", Task: "wiki", Seed: seed, Shards: shards}, task, groups)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "tiny", ref, res.RunResult)
}

// TestCorpusMismatchRejected: a worker seeing a different corpus size
// must abort the run at init, before any divergent step executes.
func TestCorpusMismatchRejected(t *testing.T) {
	const seed = 3
	store, task, groups := testSetup(t, 60, seed)
	other, _, _ := testSetup(t, 80, seed)
	tr := &LocalTransport{}
	// One worker resolves the right corpus, the other a different one.
	for _, s := range []corpus.Store{store, other} {
		s := s
		c := &localClient{w: NewWorker(func(string) (corpus.Store, error) { return s, nil }, nil, nil), calls: make(chan func())}
		go func() {
			for fn := range c.calls {
				fn()
			}
		}()
		tr.clients = append(tr.clients, c)
	}
	defer tr.Close()
	eng := testEngine(t, seed, 20)
	_, err := Run(context.Background(), eng, tr,
		Spec{RunID: "t-mismatch", Task: "wiki", Seed: seed, Shards: 2}, task, groups)
	if err == nil {
		t.Fatal("corpus size mismatch accepted")
	}
}
