// Package dist scales the zombie inner loop across sharded corpus
// workers. A Coordinator owns everything the paper's algorithm decides —
// the bandit policy over index groups, the learner, holdout evaluation,
// the quality curve, budgets — and fans the per-input work (corpus read,
// feature extraction) out to Workers, each owning a deterministic shard
// of the corpus, over a pluggable Transport (in-process channels or
// JSON/HTTP against zombie-serve).
//
// The headline invariant is determinism: the same seed and shard map
// produce a byte-identical quality curve at any worker count and over
// either transport, equal to the single-process engine's. It holds by
// construction, not by luck: the coordinator drives the unchanged
// core.Engine loop (same RNG substreams, same policy, same merge order)
// through the core.Executor seam, and everything a worker computes is a
// pure function of (corpus, task, feature version, seed, input index).
// Centralizing arm selection while fanning out execution is the same
// shape DBA bandits (arXiv:2010.09208) argue for; the (worker, group)
// execution grain shows up in per-worker stats and metrics rather than in
// the policy's arm space, precisely so the arm space — and therefore the
// curve — cannot depend on the shard count.
package dist

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"zombie/internal/core"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/parallel"
)

// Spec parameterizes one distributed run. The (Corpus, Task,
// FeatureVersion, Seed) quadruple is the task identity every worker
// rebuilds independently; FaultSpec/FaultSeed ship the run's fault plan
// to the workers (injection decisions are pure hashes, so every worker
// and the coordinator agree on them).
type Spec struct {
	RunID          string
	Corpus         string
	Task           string
	FeatureVersion int
	Seed           int64
	Shards         int
	FaultSpec      string
	FaultSeed      int64
	// Obs receives coordinator-side metrics (dist_rpc_seconds{method});
	// nil for none.
	Obs *obs.Registry
	// Tracer receives the run's spans (nil for no tracing). The
	// coordinator opens one "dist.<method>" rpc span per worker call —
	// parented under the engine's batch/holdout span when the call context
	// carries one — propagates it as a traceparent on the request, and
	// stitches the worker's returned spans underneath it, so the span tree
	// covers both sides of every RPC. Purely observational: the curve,
	// arms, and quarantine lists are byte-identical with or without it.
	Tracer *otrace.Tracer
	// Attempts and Backoff tune the per-call retry loop (defaults 3 and
	// 25ms; backoff doubles per attempt).
	Attempts int
	Backoff  time.Duration
}

// WorkerStats summarizes one worker's share of a run.
type WorkerStats struct {
	Shard        int   `json:"shard"`
	Inputs       int   `json:"inputs"`
	Holdout      int   `json:"holdout"`
	Steps        int   `json:"steps"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	FailedCalls  int64 `json:"failed_calls"`
	RetriedCalls int64 `json:"retried_calls"`
	// Parts is the shard's per-recipe-part extraction cost breakdown
	// (cached workers only), reported at finish.
	Parts []featurepipe.PartCost `json:"parts,omitempty"`
}

// Result is a distributed run's outcome: the engine result (byte-equal to
// a single-process run of the same spec) plus the distribution-side view.
type Result struct {
	*core.RunResult
	Transport string        `json:"transport"`
	Workers   []WorkerStats `json:"workers"`
	Map       *ShardMap     `json:"-"`
}

// Run executes one distributed run: initialize every worker's shard view,
// then drive eng's unchanged loop with a coordinator executor that routes
// each step to the owning worker. task and groups are the coordinator's
// own (unwrapped) task and index groups — identical to what a
// single-process run would use, which is what makes the curves
// comparable byte-for-byte.
func Run(ctx context.Context, eng *core.Engine, tr Transport, spec Spec, task *featurepipe.Task, groups *index.Groups) (*Result, error) {
	c, err := newCoordinator(tr, spec, task)
	if err != nil {
		return nil, err
	}
	if err := c.init(ctx); err != nil {
		return nil, err
	}
	res, runErr := eng.RunWithExecutor(ctx, task, groups, c)
	// Always finish: workers must release run state even when the run
	// errored, and the stats are worth having on partial results too.
	c.finish(context.WithoutCancel(ctx))
	if runErr != nil {
		return nil, runErr
	}
	return &Result{RunResult: res, Transport: tr.Name(), Workers: c.workers, Map: c.sm}, nil
}

// coordinator implements core.Executor over a Transport and a ShardMap.
type coordinator struct {
	spec    Spec
	clients []Client
	task    *featurepipe.Task
	sm      *ShardMap
	workers []WorkerStats

	// rpc holds the per-method latency histograms, keyed by the wire
	// method name withRetry is called with; empty when Obs is nil.
	rpc map[string]*obs.Histogram

	finishOnce sync.Once
	stats      core.ExecutorStats
}

func newCoordinator(tr Transport, spec Spec, task *featurepipe.Task) (*coordinator, error) {
	if spec.RunID == "" {
		return nil, fmt.Errorf("dist: empty run ID")
	}
	clients := tr.Clients()
	if spec.Shards <= 0 {
		spec.Shards = len(clients)
	}
	if len(clients) != spec.Shards {
		return nil, fmt.Errorf("dist: transport has %d workers for %d shards", len(clients), spec.Shards)
	}
	if spec.Attempts <= 0 {
		spec.Attempts = 3
	}
	if spec.Backoff <= 0 {
		spec.Backoff = 25 * time.Millisecond
	}
	sm, err := NewShardMap(task.Store.Len(), spec.Shards, spec.Seed)
	if err != nil {
		return nil, err
	}
	c := &coordinator{spec: spec, clients: clients, task: task, sm: sm, rpc: map[string]*obs.Histogram{}}
	if spec.Obs != nil {
		const name, help = "dist_rpc_seconds", "Coordinator-side worker call latency by method."
		for _, method := range []string{"init", "holdout", "step", "step-batch", "finish"} {
			c.rpc[method] = spec.Obs.HistogramL(name, help, "method", method, obs.LatencyBuckets)
		}
	}
	return c, nil
}

// withRetry runs call up to Attempts times with doubling backoff,
// recording latency per attempt and counting errored attempts under
// dist_rpc_errors{method,worker}. It returns the last error unchanged —
// deterministic worker errors must surface with identical text over any
// transport.
func (c *coordinator) withRetry(ctx context.Context, method string, shard int, call func(context.Context) error) error {
	h := c.rpc[method]
	backoff := c.spec.Backoff
	var err error
	for attempt := 0; attempt < c.spec.Attempts; attempt++ {
		if attempt > 0 {
			c.workers[shard].RetriedCalls++
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		t := time.Now()
		err = call(ctx)
		if h != nil {
			h.Observe(time.Since(t).Seconds())
		}
		if err == nil {
			return nil
		}
		c.noteRPCError(method, shard)
		if ctx.Err() != nil {
			return err
		}
	}
	c.workers[shard].FailedCalls++
	return err
}

// noteRPCError bumps the errored-attempt counter for one (method, worker)
// pair. Series are declared on first error — declaration is idempotent
// and this is far off the hot path — so a clean run exports no error
// series at all.
func (c *coordinator) noteRPCError(method string, shard int) {
	if c.spec.Obs == nil {
		return
	}
	c.spec.Obs.CounterL("dist_rpc_errors",
		"Errored coordinator-side worker call attempts by method and worker.",
		obs.Label{Key: "method", Value: method},
		obs.Label{Key: "worker", Value: strconv.Itoa(shard)},
	).Inc()
}

// startRPC opens one rpc span for a worker call, parented under the span
// the call context carries (the engine stamps its batch and holdout spans
// there) or at the root for out-of-loop calls (init, finish). Returns the
// tracer to propagate/import with and the span handle; both nil when
// tracing is off.
func (c *coordinator) startRPC(ctx context.Context, name string, shard int) (*otrace.Tracer, *otrace.SpanRef) {
	tr, parent := otrace.FromContext(ctx)
	if tr == nil {
		tr = c.spec.Tracer
	}
	if tr == nil {
		return nil, nil
	}
	return tr, tr.Start(parent, name, otrace.Int("shard", int64(shard)))
}

// init computes the shard map, fans InitRequests out to every worker, and
// cross-checks each worker's corpus size against the coordinator's — a
// disagreement means the processes mounted different artifacts and the
// shard maps would silently diverge.
func (c *coordinator) init(ctx context.Context) error {
	n := c.task.Store.Len()
	c.workers = make([]WorkerStats, c.spec.Shards)
	for i := range c.workers {
		c.workers[i].Shard = i
	}
	resps := make([]InitResponse, c.spec.Shards)
	errs := make([]error, c.spec.Shards)
	parallel.ForEach(c.spec.Shards, c.spec.Shards, func(i int) {
		req := InitRequest{
			RunID:          c.spec.RunID,
			Corpus:         c.spec.Corpus,
			Task:           c.spec.Task,
			FeatureVersion: c.spec.FeatureVersion,
			Seed:           c.spec.Seed,
			Shards:         c.spec.Shards,
			Shard:          i,
			FaultSpec:      c.spec.FaultSpec,
			FaultSeed:      c.spec.FaultSeed,
		}
		tr, ref := c.startRPC(ctx, "dist.init", i)
		req.Traceparent = tr.Traceparent(ref.ID())
		errs[i] = c.withRetry(ctx, "init", i, func(ctx context.Context) error {
			resp, err := c.clients[i].Init(ctx, req)
			if err == nil {
				resps[i] = resp
			}
			return err
		})
		ref.End()
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: init worker %d: %w", i, err)
		}
		if resps[i].StoreLen != n {
			return fmt.Errorf("dist: worker %d sees %d corpus inputs, coordinator sees %d (different artifacts?)",
				i, resps[i].StoreLen, n)
		}
		c.workers[i].Inputs = resps[i].OwnedInputs
		c.workers[i].Holdout = resps[i].OwnedHoldout
	}
	return nil
}

// BuildHoldout fans holdout extraction out to every worker and merges the
// per-shard streams back in the task's global HoldoutIdx order — the
// ordered-merge discipline that keeps the merged example list (and skip
// list) byte-identical to a single-process BuildHoldoutTolerant.
func (c *coordinator) BuildHoldout(ctx context.Context) (*learner.Holdout, []featurepipe.HoldoutSkip, error) {
	resps := make([]HoldoutResponse, c.spec.Shards)
	errs := make([]error, c.spec.Shards)
	parallel.ForEach(c.spec.Shards, c.spec.Shards, func(i int) {
		tr, ref := c.startRPC(ctx, "dist.holdout", i)
		req := HoldoutRequest{RunID: c.spec.RunID, Traceparent: tr.Traceparent(ref.ID())}
		errs[i] = c.withRetry(ctx, "holdout", i, func(ctx context.Context) error {
			resp, err := c.clients[i].Holdout(ctx, req)
			if err == nil {
				resps[i] = resp
			}
			return err
		})
		tr.Import(resps[i].Spans, ref.ID(), ref.ID())
		ref.End()
	})
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("dist: holdout from worker %d: %w", i, err)
		}
	}
	// Workers report items sorted by global index; a per-shard map lets
	// the merge walk HoldoutIdx in the task's (shuffled) order while
	// verifying every owned index was actually reported.
	byIdx := make([]map[int]*HoldoutItem, c.spec.Shards)
	for s := range resps {
		byIdx[s] = make(map[int]*HoldoutItem, len(resps[s].Items))
		for j := range resps[s].Items {
			it := &resps[s].Items[j]
			byIdx[s][it.Idx] = it
		}
	}
	examples := make([]learner.Example, 0, len(c.task.HoldoutIdx))
	var skips []featurepipe.HoldoutSkip
	for _, idx := range c.task.HoldoutIdx {
		s := c.sm.Owner(idx)
		it, ok := byIdx[s][idx]
		if !ok {
			return nil, nil, fmt.Errorf("dist: worker %d did not report holdout input %d (shard views disagree)", s, idx)
		}
		if it.Skip != "" {
			skips = append(skips, featurepipe.HoldoutSkip{InputID: it.InputID, Reason: it.Skip})
			continue
		}
		if it.Result.Produced {
			examples = append(examples, it.Result.Example)
		}
	}
	if len(examples) == 0 {
		return nil, skips, fmt.Errorf("dist: task %s: holdout produced no examples (%d of %d inputs skipped)",
			c.task.Name, len(skips), len(c.task.HoldoutIdx))
	}
	return learner.NewHoldout(examples, c.task.Metric, c.task.Positive), skips, nil
}

// ExecuteStep routes the step to the worker owning idx. A call that still
// fails after the retry budget comes back as an error; the engine loop
// quarantines the input and charges the arm, so a dead worker degrades
// exactly like a corrupt shard and eventually trips the failure budget.
func (c *coordinator) ExecuteStep(ctx context.Context, step, idx int) (core.StepOutcome, error) {
	owner := c.sm.Owner(idx)
	if owner < 0 {
		return core.StepOutcome{}, fmt.Errorf("dist: step %d: input %d outside the shard map", step, idx)
	}
	tr, ref := c.startRPC(ctx, "dist.step", owner)
	req := StepRequest{RunID: c.spec.RunID, Step: step, Idx: idx, Traceparent: tr.Traceparent(ref.ID())}
	var resp StepResponse
	err := c.withRetry(ctx, "step", owner, func(ctx context.Context) error {
		r, err := c.clients[owner].Step(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	tr.Import(resp.Spans, ref.ID(), ref.ID())
	ref.End()
	if err != nil {
		return core.StepOutcome{}, fmt.Errorf("dist: worker %d failed step %d (input %d): %v", owner, step, idx, err)
	}
	c.workers[owner].Steps++
	return core.StepOutcome{
		InputID:      resp.InputID,
		ReadErr:      resp.ReadErr,
		Cost:         time.Duration(resp.CostNanos),
		Res:          resp.Result,
		ExtractErr:   resp.ExtractErr,
		Panicked:     resp.Panicked,
		CacheHit:     resp.CacheHit,
		ReadNanos:    resp.ReadNanos,
		ExtractNanos: resp.ExtractNanos,
	}, nil
}

// ExecuteBatch implements core.BatchExecutor: group the batch by owning
// shard and send ONE StepBatch per shard — for a batch of K inputs over S
// shards that is at most min(K, S) round trips instead of K, which is the
// distributed payoff of Config.BatchSize. Shard calls run concurrently
// (like real workers serving independent requests); outcomes are
// reassembled positionally, so the engine sees exactly what K per-item
// ExecuteStep calls would have produced. A shard whose whole call fails
// after retries errors each of its items — infrastructure loss degrades
// per input, exactly like the per-item path.
func (c *coordinator) ExecuteBatch(ctx context.Context, firstStep int, idxs []int) ([]core.StepOutcome, []error) {
	outs := make([]core.StepOutcome, len(idxs))
	errs := make([]error, len(idxs))
	// Group batch positions by owner, owners in first-seen (batch) order.
	var owners []int
	positions := map[int][]int{}
	for p, idx := range idxs {
		owner := c.sm.Owner(idx)
		if owner < 0 {
			errs[p] = fmt.Errorf("dist: step %d: input %d outside the shard map", firstStep+p, idx)
			continue
		}
		if _, seen := positions[owner]; !seen {
			owners = append(owners, owner)
		}
		positions[owner] = append(positions[owner], p)
	}
	parallel.ForEach(len(owners), len(owners), func(i int) {
		owner := owners[i]
		ps := positions[owner]
		req := StepBatchRequest{
			RunID: c.spec.RunID,
			Steps: make([]int, len(ps)),
			Idxs:  make([]int, len(ps)),
		}
		for j, p := range ps {
			req.Steps[j] = firstStep + p
			req.Idxs[j] = idxs[p]
		}
		tr, ref := c.startRPC(ctx, "dist.step_batch", owner)
		req.Traceparent = tr.Traceparent(ref.ID())
		var resp StepBatchResponse
		err := c.withRetry(ctx, "step-batch", owner, func(ctx context.Context) error {
			r, err := c.clients[owner].StepBatch(ctx, req)
			if err == nil {
				resp = r
			}
			return err
		})
		tr.Import(resp.Spans, ref.ID(), ref.ID())
		ref.End()
		if err == nil && len(resp.Items) != len(ps) {
			err = fmt.Errorf("dist: worker %d returned %d outcomes for %d batched steps", owner, len(resp.Items), len(ps))
		}
		if err != nil {
			for j, p := range ps {
				errs[p] = fmt.Errorf("dist: worker %d failed step %d (input %d): %v", owner, req.Steps[j], req.Idxs[j], err)
			}
			return
		}
		for j, p := range ps {
			it := &resp.Items[j]
			if it.Err != "" {
				errs[p] = fmt.Errorf("dist: worker %d failed step %d (input %d): %v", owner, req.Steps[j], req.Idxs[j], it.Err)
				continue
			}
			c.workers[owner].Steps++
			outs[p] = core.StepOutcome{
				InputID:      it.InputID,
				ReadErr:      it.ReadErr,
				Cost:         time.Duration(it.CostNanos),
				Res:          it.Result,
				ExtractErr:   it.ExtractErr,
				Panicked:     it.Panicked,
				CacheHit:     it.CacheHit,
				ReadNanos:    it.ReadNanos,
				ExtractNanos: it.ExtractNanos,
			}
		}
	})
	return outs, errs
}

// Stats collects worker tallies, finishing the run on every worker the
// first time it is called (the engine calls it once, after the loop).
func (c *coordinator) Stats() core.ExecutorStats {
	c.finish(context.Background())
	return c.stats
}

// finish releases run state on every worker and folds their tallies into
// the coordinator's stats. Failures are absorbed: finish runs after the
// result is already decided, and a worker that died mid-run has no
// tallies left to lose.
func (c *coordinator) finish(ctx context.Context) {
	c.finishOnce.Do(func() {
		resps := make([]FinishResponse, c.spec.Shards)
		parallel.ForEach(c.spec.Shards, c.spec.Shards, func(i int) {
			tr, ref := c.startRPC(ctx, "dist.finish", i)
			req := FinishRequest{RunID: c.spec.RunID, Traceparent: tr.Traceparent(ref.ID())}
			err := c.withRetry(ctx, "finish", i, func(ctx context.Context) error {
				r, err := c.clients[i].Finish(ctx, req)
				if err == nil {
					resps[i] = r
				}
				return err
			})
			if err != nil {
				resps[i] = FinishResponse{}
			}
			// Per-shard cost attribution: one zero-length "part" span per
			// recipe part the shard's cache saw, under this finish span —
			// the dist counterpart of the engine's local part spans, with
			// the shard attr marking where the compute actually ran.
			if tr != nil {
				for _, p := range resps[i].Parts {
					tr.Start(ref.ID(), "part",
						otrace.String("part", p.Part),
						otrace.Int("shard", int64(i)),
						otrace.Int("hits", p.Hits),
						otrace.Int("misses", p.Misses),
						otrace.Dur("ns.cache_lookup", time.Duration(p.LookupNanos)),
						otrace.Dur("ns.extract", time.Duration(p.ComputeNanos)),
					).End()
				}
			}
			ref.End()
		})
		for i, r := range resps {
			c.workers[i].CacheHits = r.CacheHits
			c.workers[i].CacheMisses = r.CacheMisses
			c.workers[i].Parts = r.Parts
			c.stats.CacheHits += r.CacheHits
			c.stats.CacheMisses += r.CacheMisses
			c.stats.CacheLookupNanos += r.CacheLookupNanos
		}
	})
}
