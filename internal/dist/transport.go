package dist

import "context"

// Client is the coordinator's connection to one worker. Implementations
// must return worker-produced errors with the worker's message intact:
// the coordinator's retry wrapper folds the final message into quarantine
// reasons, and the transport-identity contract requires a deterministic
// worker failure (an injected dist.step fault) to read identically over
// any transport.
type Client interface {
	Init(ctx context.Context, req InitRequest) (InitResponse, error)
	Holdout(ctx context.Context, req HoldoutRequest) (HoldoutResponse, error)
	Step(ctx context.Context, req StepRequest) (StepResponse, error)
	// StepBatch executes a batch of steps in one round trip. Per-item
	// failures come back inside the response (StepBatchItem.Err); an error
	// return means the whole call failed (transport loss, unknown run).
	StepBatch(ctx context.Context, req StepBatchRequest) (StepBatchResponse, error)
	Finish(ctx context.Context, req FinishRequest) (FinishResponse, error)
}

// Transport provides one Client per shard — Clients()[i] owns shard i.
type Transport interface {
	// Name labels the transport in summaries ("local", "http").
	Name() string
	// Clients returns the per-shard clients, index == shard.
	Clients() []Client
	// Close releases transport resources (in-process worker goroutines,
	// idle connections). Safe to call more than once.
	Close() error
}
