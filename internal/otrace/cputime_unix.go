//go:build unix

package otrace

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative CPU time (user + system)
// via getrusage. The per-span CPU delta is the difference between two of
// these samples; it is process-wide, so concurrent spans each see the
// whole process's burn (see DESIGN.md §16 for the attribution contract).
// A sample costs ~0.5µs, which is why the tracer caches it behind
// cpuSampleInterval instead of paying the syscall on every span.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
