package otrace

import (
	"encoding/json"
	"io"
	"strconv"
)

// Node is a span with its children resolved — the JSON tree shape
// GET /runs/{id}/spans serves.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree builds the span forest. Spans arrive in start order (parents
// before children, an invariant of the buffer), so one pass suffices.
// A span whose parent is unknown — dropped under buffer pressure, or a
// remote orphan — is promoted to a root rather than lost.
func Tree(spans []Span) []*Node {
	byID := make(map[SpanID]*Node, len(spans))
	var roots []*Node
	for i := range spans {
		n := &Node{Span: spans[i]}
		byID[n.ID] = n
		if parent, ok := byID[n.Parent]; ok && n.Parent != 0 {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// chromeEvent is one Chrome trace-event ("X" = complete event with
// duration). about://tracing and https://ui.perfetto.dev both load the
// {"traceEvents": [...]} envelope WriteChrome emits.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders spans as Chrome trace events. Spans carrying a
// "shard" attribute land on track shard+1 so each worker gets its own
// flamegraph row; everything else (the engine loop) is track 0. Open
// spans (DurNanos < 0) render with zero duration rather than being
// hidden — a truncated run should still show where it stopped.
func WriteChrome(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for i := range spans {
		sp := &spans[i]
		var tid int64
		if shard, ok := sp.AttrInt("shard"); ok {
			tid = shard + 1
		}
		args := make(map[string]string, len(sp.Attrs)+2)
		for _, a := range sp.Attrs {
			args[a.Key] = a.value()
		}
		args["span_id"] = strconv.FormatUint(uint64(sp.ID), 10)
		if sp.CPUNanos > 0 {
			args["cpu_ms"] = strconv.FormatFloat(float64(sp.CPUNanos)/1e6, 'f', 3, 64)
		}
		dur := sp.DurNanos
		if dur < 0 {
			dur = 0
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "zombie",
			Ph:   "X",
			TS:   float64(sp.StartUnixNano) / 1e3,
			Dur:  float64(dur) / 1e3,
			PID:  1,
			TID:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}
