package otrace

import "testing"

func BenchmarkStartEndBare(b *testing.B) {
	tr := New("bench", 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 && tr.Len() > 1<<20-1024 {
			tr = New("bench", 1<<20)
		}
		tr.Start(0, "batch").End()
	}
}

func BenchmarkStartEndAttrs(b *testing.B) {
	tr := New("bench", 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 && tr.Len() > 1<<20-1024 {
			tr = New("bench", 1<<20)
		}
		ref := tr.Start(0, "batch", Int("step", int64(i)))
		ref.End(
			Dur("ns.select", 100),
			Dur("ns.read", 200),
			Dur("ns.extract", 300),
			Dur("ns.train", 400),
			Dur("ns.eval", 500),
			Int("inputs", 4),
		)
	}
}
