// Package otrace is zombie's dependency-free span tracer: the layer that
// answers "where inside this run did the time and CPU go" once work fans
// out across batches, shards, cache tiers, and the journal. A span is an
// id, a parent, a name, a start time, a wall duration, a process-CPU
// delta, and a small bag of string attributes. Spans live in a bounded
// per-run buffer; when the buffer fills, new spans are counted as dropped
// rather than evicting old ones, so the root of the tree (the run span
// and its early structure) always survives — the opposite policy from
// trace.Ring, which keeps the newest events because its consumers tail a
// live stream.
//
// Tracing is observational by construction: a Tracer only reads clocks
// and appends to its own buffer, so curves, arms, and quarantine lists
// are byte-identical with tracing on or off (test-asserted), and a nil
// *Tracer is valid everywhere and records nothing — the same contract
// trace.Log and the phase observer follow.
//
// Cross-process propagation uses the W3C traceparent format
// ("00-{trace-id}-{parent-id}-01"): the dist coordinator injects it into
// every /dist/* request (HTTP header and wire field), workers open child
// spans under the propagated parent and return them in the response, and
// Import stitches them back into the coordinator's buffer under the rpc
// span that carried the call — one run-wide tree across processes and
// both transports.
package otrace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// SpanID identifies a span within one trace. ID 0 is "no span" — the
// parent of a root span, and the ID every nil-safe accessor returns.
type SpanID uint64

// Attr is one key/value annotation on a span. Values are strings on the
// wire; numeric attributes use the Int/Dur constructors and read back via
// AttrInt, so the cost summary can aggregate them without a type system.
// Int/Dur keep the raw number and render the decimal string lazily at
// read/marshal time — attribute construction is on the span hot path and
// must not pay a FormatInt allocation per value.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`

	num   int64
	isNum bool
}

// value returns the attribute's string form, rendering numeric
// attributes on demand.
func (a Attr) value() string {
	if a.isNum {
		return strconv.FormatInt(a.num, 10)
	}
	return a.Val
}

// MarshalJSON renders the wire form {"k":...,"v":...}, materializing
// lazy numeric values. Unmarshalling uses the default decoder and yields
// a plain string attribute, which AttrInt still parses — the round trip
// loses nothing.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key string `json:"k"`
		Val string `json:"v"`
	}{a.Key, a.value()})
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, num: v, isNum: true} }

// Dur builds a duration attribute, recorded as integer nanoseconds.
func Dur(k string, d time.Duration) Attr { return Int(k, int64(d)) }

// Span is one completed (or still-open, DurNanos < 0) operation.
// Timestamps are integer nanoseconds so spans round-trip JSON unchanged
// across the dist wire.
type Span struct {
	ID            SpanID `json:"id"`
	Parent        SpanID `json:"parent,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_ns"`
	DurNanos      int64  `json:"dur_ns"`
	CPUNanos      int64  `json:"cpu_ns,omitempty"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it exists.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.value(), true
		}
	}
	return "", false
}

// AttrInt returns the named attribute parsed as an int64.
func (s *Span) AttrInt(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			if a.isNum {
				return a.num, true
			}
			n, err := strconv.ParseInt(a.Val, 10, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

// Tracer is a bounded per-run span buffer. All methods are safe for
// concurrent use and all are no-ops on a nil receiver, so call sites
// never branch on whether tracing is enabled.
type Tracer struct {
	traceID string
	cap     int

	mu      sync.Mutex
	nextID  SpanID
	spans   []Span
	dropped int64

	// arena is chunked backing storage for span attrs: each recorded span
	// carves a capacity-capped sub-slice out of the current chunk, so attr
	// storage costs one allocation per chunk instead of one per span —
	// span garbage is what pushes GC onto the engine's otherwise
	// allocation-free inner loop.
	arena []Attr

	// cpuVal/cpuAt cache the process-CPU clock so span bookkeeping costs
	// two time.Now reads, not two getrusage syscalls (~0.5µs each — real
	// money when the engine opens a span per batch). The clock is
	// re-sampled at most once per cpuSampleInterval of wall time; spans
	// shorter than that read a CPU delta of 0, which loses nothing — the
	// kernel only accounts CPU at scheduler-tick granularity anyway.
	cpuVal time.Duration
	cpuAt  time.Time

	// onSpan, when set, observes every Start outcome (recorded or
	// dropped) — the obs-registry layering hook, outside the lock's
	// critical path concerns since it is two counter increments.
	onSpan func(recorded bool)
}

// DefaultCapacity bounds a run's span buffer when the caller does not
// choose one: generous enough for thousands of batches plus stitched
// worker spans, small enough (~200B/span) to never matter per run.
const DefaultCapacity = 8192

// cpuSampleInterval bounds how often the tracer reads the process-CPU
// clock. CPU deltas are exact to within this much wall time; sub-interval
// spans report 0.
const cpuSampleInterval = 200 * time.Microsecond

// arenaChunk is how many Attrs each arena chunk holds (~200KB). A batch
// span reserves ~9, so one chunk serves a few hundred spans.
const arenaChunk = 4096

// reserveAttrs carves an attr slice with the given length/capacity out of
// the arena. Caller holds t.mu. The returned slice's capacity is capped,
// so a span appending past its reservation regrows privately instead of
// clobbering a neighbor's attrs.
func (t *Tracer) reserveAttrs(n, capacity int) []Attr {
	if capacity > arenaChunk {
		return make([]Attr, n, capacity)
	}
	if len(t.arena)+capacity > cap(t.arena) {
		t.arena = make([]Attr, 0, arenaChunk)
	}
	at := len(t.arena)
	t.arena = t.arena[:at+capacity]
	return t.arena[at : at+n : at+capacity]
}

// sampledCPU returns the cached process-CPU reading, refreshing it when
// the cache is older than cpuSampleInterval. Caller holds t.mu.
func (t *Tracer) sampledCPU(now time.Time) time.Duration {
	if t.cpuAt.IsZero() || now.Sub(t.cpuAt) >= cpuSampleInterval {
		t.cpuVal = processCPU()
		t.cpuAt = now
	}
	return t.cpuVal
}

// New returns a tracer whose trace ID is derived deterministically from
// seed (a run ID works well — the same run always maps to the same trace
// ID, which makes smoke tests and log correlation trivial). capacity <= 0
// uses DefaultCapacity.
func New(seed string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	sum := sha256.Sum256([]byte(seed))
	// Reserve the buffer up front (bounded for outsized capacities): a
	// run-scoped tracer at DefaultCapacity is under a megabyte, and
	// growing by doubling would shed garbage on the engine's otherwise
	// allocation-free inner loop.
	reserve := capacity
	if reserve > 8*DefaultCapacity {
		reserve = 8 * DefaultCapacity
	}
	return &Tracer{
		traceID: hex.EncodeToString(sum[:16]),
		cap:     capacity,
		spans:   make([]Span, 0, reserve),
	}
}

// OnSpan registers fn to observe every span start (recorded=false means
// the buffer was full and the span was counted as dropped). Used to layer
// the tracer under the obs registry without importing it.
func (t *Tracer) OnSpan(fn func(recorded bool)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onSpan = fn
	t.mu.Unlock()
}

// TraceID returns the 32-hex-char trace ID ("" for nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SpanRef is a handle to a started span. A nil *SpanRef (from a nil
// tracer, or a dropped span's children) is valid: End is a no-op and ID
// returns 0.
type SpanRef struct {
	t        *Tracer
	id       SpanID
	idx      int // index in t.spans; valid only when recorded
	start    time.Time
	startCPU time.Duration
	recorded bool
}

// ID returns the span's ID (0 for nil).
func (s *SpanRef) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a span under parent (0 = root). The span is appended to
// the buffer immediately — buffer order is start order, so parents
// precede children and tree builders need no sort. When the buffer is
// full the span is counted as dropped but still gets a real ID, so its
// children keep a consistent parent chain (they surface as orphans in
// the tree, attached to the root).
func (t *Tracer) Start(parent SpanID, name string, attrs ...Attr) *SpanRef {
	if t == nil {
		return nil
	}
	ref := &SpanRef{}
	t.StartInto(ref, time.Now(), parent, name, attrs...)
	return ref
}

// StartInto is Start for hot loops: it fills a caller-owned SpanRef
// instead of allocating one, and takes the caller's clock reading instead
// of its own — the engine's batch loop already reads time.Now at batch
// start, so one read serves the select-phase timer and the span.
func (t *Tracer) StartInto(ref *SpanRef, now time.Time, parent SpanID, name string, attrs ...Attr) {
	if t == nil {
		*ref = SpanRef{}
		return
	}
	t.mu.Lock()
	cpu := t.sampledCPU(now)
	t.nextID++
	id := t.nextID
	idx := len(t.spans)
	recorded := idx < t.cap
	if recorded {
		// Copy attrs into span-owned arena storage with headroom for the
		// attrs End will append — no per-span allocation, and the caller's
		// variadic array can stay on its stack.
		var owned []Attr
		if len(attrs) > 0 {
			owned = t.reserveAttrs(len(attrs), len(attrs)+8)
			copy(owned, attrs)
		}
		// The buffer never evicts (keep-first), so this index stays valid
		// for the span's whole life — End addresses the slot directly
		// instead of going through an open-span map.
		t.spans = append(t.spans, Span{
			ID:            id,
			Parent:        parent,
			Name:          name,
			StartUnixNano: now.UnixNano(),
			DurNanos:      -1,
			Attrs:         owned,
		})
	} else {
		t.dropped++
	}
	fn := t.onSpan
	t.mu.Unlock()
	if fn != nil {
		fn(recorded)
	}
	*ref = SpanRef{t: t, id: id, idx: idx, start: now, startCPU: cpu, recorded: recorded}
}

// End closes the span, recording its wall duration, the process-CPU
// delta since Start, and any extra attributes (appended after the ones
// given to Start). Ending a nil or dropped span is a no-op.
func (s *SpanRef) End(attrs ...Attr) {
	if s == nil || !s.recorded {
		return
	}
	now := time.Now()
	dur := now.Sub(s.start)
	t := s.t
	t.mu.Lock()
	cpu := t.sampledCPU(now) - s.startCPU
	if cpu < 0 {
		cpu = 0
	}
	sp := &t.spans[s.idx]
	sp.DurNanos = int64(dur)
	sp.CPUNanos = int64(cpu)
	sp.Attrs = append(sp.Attrs, attrs...)
	t.mu.Unlock()
}

// Import stitches spans recorded in another process into this buffer.
// Every imported span gets a fresh local ID; a parent equal to
// sentParent (the ID this tracer propagated in the traceparent) — or any
// parent the remote buffer never defined — maps to under, so remote
// roots land beneath the rpc span that carried the call. Returns how
// many spans were recorded (the rest counted as dropped).
func (t *Tracer) Import(spans []Span, sentParent, under SpanID) int {
	if t == nil || len(spans) == 0 {
		return 0
	}
	t.mu.Lock()
	idmap := make(map[SpanID]SpanID, len(spans))
	recorded := 0
	for _, sp := range spans {
		t.nextID++
		id := t.nextID
		// Resolve the parent before registering this span's own ID:
		// remote IDs are a different namespace and may collide with
		// sentParent or with this very span. A parent the remote buffer
		// defined earlier wins; anything else (the propagated parent,
		// or a dropped remote ancestor) lands under the rpc span.
		parent := under
		if mapped, ok := idmap[sp.Parent]; ok {
			parent = mapped
		}
		idmap[sp.ID] = id
		if len(t.spans) < t.cap {
			sp.ID = id
			sp.Parent = parent
			t.spans = append(t.spans, sp)
			recorded++
		} else {
			t.dropped++
		}
	}
	fn := t.onSpan
	t.mu.Unlock()
	if fn != nil {
		for i := 0; i < len(spans); i++ {
			fn(i < recorded)
		}
	}
	return recorded
}

// Snapshot returns a copy of the recorded spans (in start order) and the
// dropped count. Open spans appear with DurNanos == -1.
func (t *Tracer) Snapshot() ([]Span, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		// Attrs may still be appended to by End; copy defensively.
		if len(out[i].Attrs) > 0 {
			attrs := make([]Attr, len(out[i].Attrs))
			copy(attrs, out[i].Attrs)
			out[i].Attrs = attrs
		}
	}
	return out, t.dropped
}

// Reset discards every recorded span, the drop count, and the ID
// sequence while keeping the buffer's and arena's memory, so a caller
// timing repeated runs (the tracing bench) reuses warm storage instead of
// re-paying allocation and GC per round. Snapshots taken before Reset
// stay valid — Snapshot copies attrs out of the arena.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.arena = t.arena[:0]
	t.dropped = 0
	t.nextID = 0
	t.cpuAt = time.Time{}
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the bounded buffer refused.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Header is the HTTP header (and wire field name) that carries the
// propagated trace context, per the W3C Trace Context spec.
const Header = "traceparent"

// Traceparent renders the propagation header for a call parented at the
// given span: "00-{trace-id 32 hex}-{parent-id 16 hex}-01". Returns ""
// for a nil tracer, which callers treat as "tracing off" and omit the
// header entirely.
func (t *Tracer) Traceparent(parent SpanID) string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", t.traceID, uint64(parent))
}

// ParseTraceparent decodes a traceparent header. ok is false for any
// malformed value — a worker then simply runs untraced, it never fails
// the request over telemetry.
func ParseTraceparent(s string) (traceID string, parent SpanID, ok bool) {
	// 00-<32 hex>-<16 hex>-<2 hex> = 55 bytes with three dashes.
	if len(s) != 55 || s[0:3] != "00-" || s[35] != '-' || s[52] != '-' {
		return "", 0, false
	}
	traceID = s[3:35]
	if _, err := hex.DecodeString(traceID); err != nil {
		return "", 0, false
	}
	id, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return traceID, SpanID(id), true
}
