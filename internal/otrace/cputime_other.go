//go:build !unix

package otrace

import "time"

// processCPU is unavailable off unix; spans record zero CPU and the cost
// summary's cpu_seconds degrade to zero while wall attribution still
// works.
func processCPU() time.Duration { return 0 }
