package otrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsValidEverywhere(t *testing.T) {
	var tr *Tracer
	ref := tr.Start(0, "anything", String("k", "v"))
	if ref.ID() != 0 {
		t.Fatalf("nil tracer span ID = %d, want 0", ref.ID())
	}
	ref.End(Int("n", 1)) // must not panic
	if got := tr.Traceparent(0); got != "" {
		t.Fatalf("nil Traceparent = %q, want empty", got)
	}
	if spans, dropped := tr.Snapshot(); spans != nil || dropped != 0 {
		t.Fatalf("nil Snapshot = %v, %d", spans, dropped)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.TraceID() != "" {
		t.Fatal("nil accessors should all be zero")
	}
	if tr.Import([]Span{{ID: 1}}, 0, 0) != 0 {
		t.Fatal("nil Import should record nothing")
	}
}

func TestSpanRecordingAndOrder(t *testing.T) {
	tr := New("run-1", 16)
	root := tr.Start(0, "run", String("task", "wiki"))
	child := tr.Start(root.ID(), "batch")
	child.End(Dur("ns.extract", 5*time.Millisecond))
	root.End()

	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "run" || spans[1].Name != "batch" {
		t.Fatalf("buffer order = %q, %q; want start order run, batch", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[0].DurNanos < spans[1].DurNanos || spans[1].DurNanos < 0 {
		t.Fatalf("durations: root %d, child %d", spans[0].DurNanos, spans[1].DurNanos)
	}
	if v, ok := spans[1].AttrInt("ns.extract"); !ok || v != int64(5*time.Millisecond) {
		t.Fatalf("End attrs not appended: %v", spans[1].Attrs)
	}
	if _, ok := spans[0].Attr("task"); !ok {
		t.Fatalf("Start attrs lost: %v", spans[0].Attrs)
	}
}

func TestBoundedBufferKeepsFirstAndCountsDrops(t *testing.T) {
	tr := New("run-2", 3)
	for i := 0; i < 10; i++ {
		tr.Start(0, "s").End()
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want cap 3", len(spans))
	}
	if dropped != 7 {
		t.Fatalf("dropped = %d, want exactly 7", dropped)
	}
	// Keep-first: the earliest spans survive, so IDs are 1..3.
	for i, sp := range spans {
		if sp.ID != SpanID(i+1) {
			t.Fatalf("span %d has ID %d; keep-first should retain the earliest", i, sp.ID)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("run-3", 8)
	ref := tr.Start(0, "rpc")
	hdr := tr.Traceparent(ref.ID())
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q not W3C-shaped", hdr)
	}
	traceID, parent, ok := ParseTraceparent(hdr)
	if !ok || traceID != tr.TraceID() || parent != ref.ID() {
		t.Fatalf("round trip: ok=%v traceID=%q parent=%d; want %q/%d", ok, traceID, parent, tr.TraceID(), ref.ID())
	}
	for _, bad := range []string{
		"", "00", "01-" + tr.TraceID() + "-0000000000000001-01",
		"00-zzzz-0000000000000001-01",
		"00-" + tr.TraceID() + "-zzzzzzzzzzzzzzzz-01",
		strings.Repeat("x", 55),
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed input", bad)
		}
	}
}

func TestTraceIDDeterministic(t *testing.T) {
	if New("run-x", 8).TraceID() != New("run-x", 8).TraceID() {
		t.Fatal("same seed should derive the same trace ID")
	}
	if New("run-x", 8).TraceID() == New("run-y", 8).TraceID() {
		t.Fatal("different seeds should derive different trace IDs")
	}
}

func TestImportRemapsUnderRPCSpan(t *testing.T) {
	coord := New("run-4", 64)
	rpc := coord.Start(0, "dist.step_batch")
	sent := rpc.ID()

	// Worker-side: a request tracer parented at the propagated ID.
	_, parent, ok := ParseTraceparent(coord.Traceparent(sent))
	if !ok {
		t.Fatal("propagated header should parse")
	}
	wtr := New("req", 64)
	wroot := wtr.Start(parent, "worker.step_batch", Int("shard", 2))
	wchild := wtr.Start(wroot.ID(), "worker.read")
	wchild.End()
	wroot.End()
	wspans, _ := wtr.Snapshot()

	if n := coord.Import(wspans, sent, sent); n != 2 {
		t.Fatalf("imported %d spans, want 2", n)
	}
	rpc.End()

	spans, _ := coord.Snapshot()
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	w := byName["worker.step_batch"]
	if w.Parent != sent {
		t.Fatalf("worker root stitched under %d, want rpc span %d", w.Parent, sent)
	}
	r := byName["worker.read"]
	if r.Parent != w.ID {
		t.Fatalf("worker child parent = %d, want remapped %d", r.Parent, w.ID)
	}
	if w.ID == wspans[0].ID && r.ID == wspans[1].ID {
		t.Fatal("imported spans should get fresh local IDs")
	}
}

func TestTreePromotesOrphans(t *testing.T) {
	spans := []Span{
		{ID: 1, Parent: 0, Name: "run"},
		{ID: 2, Parent: 1, Name: "batch"},
		{ID: 4, Parent: 99, Name: "orphan"}, // parent dropped
	}
	roots := Tree(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want run + promoted orphan", len(roots))
	}
	if roots[0].Name != "run" || len(roots[0].Children) != 1 || roots[0].Children[0].Name != "batch" {
		t.Fatalf("tree shape wrong: %+v", roots[0])
	}
	if roots[1].Name != "orphan" {
		t.Fatalf("orphan not promoted: %+v", roots[1])
	}
}

func TestBuildCostAggregatesCells(t *testing.T) {
	spans := []Span{
		{ID: 1, Name: "run", DurNanos: int64(10 * time.Second), CPUNanos: int64(4 * time.Second)},
		{ID: 2, Parent: 1, Name: "batch", DurNanos: 1, CPUNanos: int64(2 * time.Second),
			Attrs: []Attr{
				Dur("ns.extract", 3*time.Second),
				Dur("ns.train", 1*time.Second),
			}},
		{ID: 3, Parent: 1, Name: "worker.step_batch", DurNanos: 1,
			Attrs: []Attr{
				Int("shard", 1),
				Dur("ns.extract", 2*time.Second),
			}},
		{ID: 4, Parent: 1, Name: "part", DurNanos: 1,
			Attrs: []Attr{
				Int("shard", 1),
				String("part", "tokens"),
				Dur("ns.extract", 1500*time.Millisecond),
			}},
	}
	sum := BuildCost(spans, 5)
	if sum.SpanCount != 4 || sum.SpansDropped != 5 {
		t.Fatalf("span bookkeeping: %+v", sum)
	}
	if sum.WallSeconds != 10 || sum.CPUSeconds != 4 {
		t.Fatalf("totals from root span: wall=%v cpu=%v", sum.WallSeconds, sum.CPUSeconds)
	}
	find := func(phase string, shard int, part string) *CostCell {
		for i := range sum.Cells {
			c := &sum.Cells[i]
			if c.Phase == phase && c.Shard == shard && c.Part == part {
				return c
			}
		}
		t.Fatalf("missing cell (%s, %d, %q) in %+v", phase, shard, part, sum.Cells)
		return nil
	}
	if c := find("extract", -1, ""); c.WallSeconds != 3 || c.CPUSeconds != 1.5 {
		t.Fatalf("coordinator extract cell: %+v (CPU should be wall-share apportioned)", c)
	}
	if c := find("train", -1, ""); c.WallSeconds != 1 || c.CPUSeconds != 0.5 {
		t.Fatalf("train cell: %+v", c)
	}
	if c := find("extract", 1, ""); c.WallSeconds != 2 {
		t.Fatalf("shard extract cell: %+v", c)
	}
	if c := find("extract", 1, "tokens"); c.WallSeconds != 1.5 {
		t.Fatalf("part cell: %+v", c)
	}
}

func TestWriteChromeEmitsLoadableJSON(t *testing.T) {
	tr := New("run-5", 16)
	root := tr.Start(0, "run")
	tr.Start(root.ID(), "worker.step_batch", Int("shard", 3)).End()
	root.End()
	spans, _ := tr.Snapshot()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase %q, want complete events", ev.Name, ev.Ph)
		}
	}
	if doc.TraceEvents[1].TID != 4 {
		t.Fatalf("shard 3 should render on track 4, got %d", doc.TraceEvents[1].TID)
	}
}

func TestOnSpanObserves(t *testing.T) {
	tr := New("run-6", 2)
	var recorded, dropped int
	tr.OnSpan(func(ok bool) {
		if ok {
			recorded++
		} else {
			dropped++
		}
	})
	for i := 0; i < 5; i++ {
		tr.Start(0, "s").End()
	}
	if recorded != 2 || dropped != 3 {
		t.Fatalf("observer saw recorded=%d dropped=%d, want 2/3", recorded, dropped)
	}
}
