package otrace

import "context"

// The engine loop and the executor seam communicate span context through
// the context.Context the Executor methods already receive, so adding
// tracing changed no interfaces: the loop stamps each batch's span into
// the ctx it passes down, and the distributed coordinator parents its rpc
// spans there (or traces nothing when the ctx carries no span — the
// nil-tracer contract again).

type ctxKey struct{}

// Cursor is a mutable ambient trace position. Stamping a ctx with
// context.WithValue costs two heap allocations, which is real money when
// the engine loop would pay it per batch; a Cursor is stamped once and
// Moved to each batch's span instead. The contract: Move only when every
// consumer of the previous position has returned — the engine's batch
// barrier (local goroutines and shard RPCs alike join before the next
// batch starts) guarantees exactly that.
type Cursor struct {
	t  *Tracer
	id SpanID
}

// Cursor returns a new cursor over this tracer (nil for a nil tracer, and
// every Cursor method is nil-safe, matching the rest of the package).
func (t *Tracer) Cursor() *Cursor {
	if t == nil {
		return nil
	}
	return &Cursor{t: t}
}

// Move repoints the cursor at the given span.
func (c *Cursor) Move(id SpanID) {
	if c != nil {
		c.id = id
	}
}

// ContextWithCursor returns ctx carrying the cursor as the ambient trace
// position. A nil cursor returns ctx unchanged.
func ContextWithCursor(ctx context.Context, c *Cursor) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// ContextWithSpan returns ctx carrying (tracer, span) as a fixed ambient
// trace position. A nil tracer returns ctx unchanged.
func ContextWithSpan(ctx context.Context, t *Tracer, id SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Cursor{t: t, id: id})
}

// FromContext returns the ambient tracer and span, or (nil, 0) when the
// context carries none.
func FromContext(ctx context.Context) (*Tracer, SpanID) {
	if c, ok := ctx.Value(ctxKey{}).(*Cursor); ok {
		return c.t, c.id
	}
	return nil, 0
}
