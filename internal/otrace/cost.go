package otrace

import (
	"sort"
	"strings"
)

// The cost summary aggregates span attributes into the per-run
// attribution artifact ROADMAP item 3's cost-normalized reward consumes.
// The convention: any span attribute named "ns.<phase>" is a wall-time
// contribution (integer nanoseconds) to that phase; the span's "shard"
// attribute (absent = -1, the coordinator/local process) and "part"
// attribute (absent = "", the whole feature) are the other two
// dimensions. CPU seconds are the span's measured process-CPU delta
// apportioned across its ns.* attributes by wall share — measured at
// span granularity, estimated below it (DESIGN.md §16).
//
// Cells are attribution views, not a partition: per-shard cells refine
// the coordinator's phase totals (a dist run's read/extract phases sum
// the worker-reported nanoseconds) and per-part cells refine per-shard
// extract time, so summing every cell double-counts by design. Group by
// the dimension you need.

// CostCell is wall and CPU attributed to one (phase, shard, part) cell.
type CostCell struct {
	Phase       string  `json:"phase"`
	Shard       int     `json:"shard"` // -1 = coordinator/local process
	Part        string  `json:"part,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// CostSummary is the per-run cost-attribution artifact folded into
// RunInfo and the bench reports.
type CostSummary struct {
	WallSeconds  float64    `json:"wall_seconds"`
	CPUSeconds   float64    `json:"cpu_seconds"`
	SpanCount    int        `json:"span_count"`
	SpansDropped int64      `json:"spans_dropped,omitempty"`
	Cells        []CostCell `json:"cells"`
}

// nsPrefix marks a span attribute as a phase wall-time contribution.
const nsPrefix = "ns."

// BuildCost aggregates a span snapshot into the cost summary. Wall and
// CPU totals come from the root spans (every span without a recorded
// parent), so a stitched dist tree reports the coordinator's run span
// once, not once per process.
func BuildCost(spans []Span, dropped int64) *CostSummary {
	sum := &CostSummary{SpanCount: len(spans), SpansDropped: dropped}
	type key struct {
		phase string
		shard int
		part  string
	}
	cells := map[key]*CostCell{}
	known := make(map[SpanID]bool, len(spans))
	for i := range spans {
		sp := &spans[i]
		known[sp.ID] = true
		if sp.Parent == 0 || !known[sp.Parent] {
			if sp.DurNanos > 0 {
				sum.WallSeconds += float64(sp.DurNanos) / 1e9
			}
			sum.CPUSeconds += float64(sp.CPUNanos) / 1e9
		}
		shard := -1
		if s, ok := sp.AttrInt("shard"); ok {
			shard = int(s)
		}
		part, _ := sp.Attr("part")
		var phaseNanos int64
		for _, a := range sp.Attrs {
			if strings.HasPrefix(a.Key, nsPrefix) {
				if n, ok := sp.AttrInt(a.Key); ok && n > 0 {
					phaseNanos += n
				}
			}
		}
		if phaseNanos == 0 {
			continue
		}
		for _, a := range sp.Attrs {
			if !strings.HasPrefix(a.Key, nsPrefix) {
				continue
			}
			n, ok := sp.AttrInt(a.Key)
			if !ok || n <= 0 {
				continue
			}
			k := key{phase: a.Key[len(nsPrefix):], shard: shard, part: part}
			c := cells[k]
			if c == nil {
				c = &CostCell{Phase: k.phase, Shard: k.shard, Part: k.part}
				cells[k] = c
			}
			c.WallSeconds += float64(n) / 1e9
			// Apportion the span's measured CPU across its phases by
			// wall share: exact when the span covers one phase,
			// estimated when it brackets several.
			c.CPUSeconds += float64(sp.CPUNanos) / 1e9 * float64(n) / float64(phaseNanos)
		}
	}
	sum.Cells = make([]CostCell, 0, len(cells))
	for _, c := range cells {
		sum.Cells = append(sum.Cells, *c)
	}
	sort.Slice(sum.Cells, func(i, j int) bool {
		a, b := sum.Cells[i], sum.Cells[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		return a.Phase < b.Phase
	})
	return sum
}
