package featcache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// byteCodec is the test codec: values are strings, stored verbatim.
type byteCodec struct{}

func (byteCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("not a string: %T", v)
	}
	return []byte(s), nil
}

func (byteCodec) Decode(b []byte) (any, error) { return string(b), nil }

func mustOpen(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := Open(cfg, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetOrComputeHitMiss(t *testing.T) {
	c := mustOpen(t, Config{})
	calls := 0
	compute := func() (any, error) { calls++; return "v1", nil }

	v, hit, err := c.GetOrCompute("fp", "in1", compute)
	if err != nil || hit || v != "v1" || calls != 1 {
		t.Fatalf("first call: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	v, hit, err = c.GetOrCompute("fp", "in1", compute)
	if err != nil || !hit || v != "v1" || calls != 1 {
		t.Fatalf("second call: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	// Different input and different fingerprint both miss.
	if _, hit, _ = c.GetOrCompute("fp", "in2", compute); hit {
		t.Fatal("different input should miss")
	}
	if _, hit, _ = c.GetOrCompute("fp2", "in1", compute); hit {
		t.Fatal("different fingerprint should miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := mustOpen(t, Config{})
	calls := 0
	fail := func() (any, error) { calls++; return nil, fmt.Errorf("boom %d", calls) }
	if _, _, err := c.GetOrCompute("fp", "x", fail); err == nil || err.Error() != "boom 1" {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.GetOrCompute("fp", "x", fail); err == nil || err.Error() != "boom 2" {
		t.Fatalf("second err = %v (errors must not be cached)", err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("stats after errors = %+v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := mustOpen(t, Config{})
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	compute := func() (any, error) {
		calls.Add(1)
		once.Do(func() { close(started) })
		<-gate
		return "shared", nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("fp", "same", compute)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v.(string)
		}(i)
	}
	<-started
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestComputePanicPropagatesAndUnblocksWaiters(t *testing.T) {
	c := mustOpen(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})

	waiterErr := make(chan error, 1)
	go func() {
		<-entered
		go func() {
			// Give the waiter below time to coalesce onto the flight before
			// the compute is allowed to panic.
			time.Sleep(100 * time.Millisecond)
			close(release)
		}()
		_, _, err := c.GetOrCompute("fp", "bad", func() (any, error) {
			t.Error("waiter must coalesce, not recompute")
			return nil, nil
		})
		waiterErr <- err
	}()

	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Error("panic did not propagate to the computing caller")
			} else if fmt.Sprint(p) != "kaboom" {
				t.Errorf("panic value = %v", p)
			}
		}()
		c.GetOrCompute("fp", "bad", func() (any, error) {
			close(entered)
			<-release
			panic("kaboom")
		})
	}()

	err := <-waiterErr
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter err = %v", err)
	}
	// The key is retryable afterwards.
	v, hit, err := c.GetOrCompute("fp", "bad", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after panic: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestComputePanicBeforeWaiterArrives(t *testing.T) {
	// Same panic path without a concurrent waiter: the flight must still be
	// cleaned up so the next call recomputes instead of deadlocking.
	c := mustOpen(t, Config{})
	func() {
		defer func() { recover() }()
		c.GetOrCompute("fp", "solo", func() (any, error) { panic("x") })
	}()
	v, _, err := c.GetOrCompute("fp", "solo", func() (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" {
		t.Fatalf("v=%v err=%v", v, err)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, tiny budget: inserting values of ~1KB each must evict the
	// least recently used, never the newest.
	c := mustOpen(t, Config{Shards: 1, MaxBytes: 3 * 1200})
	val := strings.Repeat("x", 1000)
	get := func(id string) bool {
		_, hit, err := c.GetOrCompute("fp", id, func() (any, error) { return val, nil })
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get("a")
	get("b")
	get("c")
	if !get("a") { // refresh a
		t.Fatal("a should still be resident")
	}
	get("d") // evicts b (LRU)
	if got := c.Stats().Evictions; got == 0 {
		t.Fatalf("expected evictions, got %d", got)
	}
	if get("b") {
		t.Fatal("b should have been evicted")
	}
	if !get("a") {
		t.Fatal("recently used a should survive")
	}
}

func TestInvalidateClearsMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir})
	c.GetOrCompute("fp", "a", func() (any, error) { return "v", nil })
	if st := c.Stats(); st.Entries != 1 || st.DiskEntries != 1 {
		t.Fatalf("before invalidate: %+v", st)
	}
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.DiskEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("after invalidate: %+v", st)
	}
	if _, hit, _ := c.GetOrCompute("fp", "a", func() (any, error) { return "v", nil }); hit {
		t.Fatal("invalidated key must recompute")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("in%d", i)
		c.GetOrCompute("fp", id, func() (any, error) { return "val-" + id, nil })
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: memory is cold, disk is warm.
	c2 := mustOpen(t, Config{Dir: dir})
	calls := 0
	v, hit, err := c2.GetOrCompute("fp", "in7", func() (any, error) { calls++; return "recomputed", nil })
	if err != nil || !hit || v != "val-in7" || calls != 0 {
		t.Fatalf("disk reload: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.DiskEntries != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsNilCodec(t *testing.T) {
	if _, err := Open(Config{}, nil); err == nil {
		t.Fatal("nil codec should fail")
	}
}
