// Package featcache is a content-addressed cache for feature-extraction
// results, keyed by (feature-version fingerprint, input ID). Feature code
// is deterministic and side-effect free by contract (featurepipe.
// FeatureFunc), so a cached result is indistinguishable from a fresh
// extraction — the cache changes wall-clock time and nothing else. The
// engineer's inner loop re-runs largely unchanged feature code over
// largely the same inputs; memoizing extraction attacks the same
// wall-clock the paper's input selection does, from the orthogonal
// direction.
//
// The cache is two layers:
//
//   - a sharded in-memory LRU with per-key singleflight, so concurrent
//     runs (the server's worker pool) never duplicate an extraction and
//     never block behind one global lock, and
//   - an optional disk-backed append-only segment store (see Segment),
//     so cache contents survive process restarts across an engineering
//     session's iterations.
//
// Values cross the disk boundary through a Codec supplied by the caller
// (featurepipe.ResultCodec for extraction results); in memory the decoded
// value is stored directly and shared by reference, so cached values must
// be treated as immutable by every consumer.
package featcache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"zombie/internal/fault"
	"zombie/internal/otrace"
)

// Codec converts cached values to and from their durable byte form. Encode
// is also used for in-memory byte accounting, so it must be cheap relative
// to the computation being cached.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// Config sizes a Cache. The zero value is usable: memory-only, 64 MiB.
type Config struct {
	// MaxBytes is the in-memory budget across all shards (default 64 MiB).
	// Eviction is LRU per shard once the shard's slice of the budget is
	// exceeded.
	MaxBytes int64
	// Shards is the number of independent LRU shards (default 16; keys are
	// spread by FNV-1a hash).
	Shards int
	// Dir, when non-empty, enables the disk segment store in that
	// directory. Entries evicted from memory remain on disk and reload on
	// the next request.
	Dir string
	// DiskErrorLimit is how many cumulative disk IO errors (failed segment
	// reads or appends) the cache tolerates before demoting itself to
	// memory-only for the rest of the process. Default 3; negative keeps
	// retrying the disk forever. Demotion is the graceful-degradation rung
	// below "disk-backed": a sick volume costs persistence and cross-process
	// reuse, never an extraction.
	DiskErrorLimit int
	// Faults, when non-nil, injects seeded deterministic IO failures at the
	// disk boundary (fault.SiteCacheRead and fault.SiteCacheWrite, keyed by
	// cache key). Because a failed read falls back to recomputing and a
	// failed write only skips persistence, injected cache faults change
	// cache counters and nothing else — chaos tests assert results stay
	// byte-identical to a cache-off run.
	Faults *fault.Injector
	// Tracer, when non-nil, records disk-boundary spans ("cache.disk_read",
	// "cache.disk_write", and a one-shot "cache.demote" when the error limit
	// trips). In-memory lookups are deliberately untraced here: per-lookup
	// wall time already rides the run tracer as ns.cache_lookup and the
	// per-part cost tallies, while disk IO and demotion are process-level
	// events no single run owns. Tracing is observational: hit/miss
	// behavior, eviction, and demotion are identical with a nil Tracer.
	Tracer *otrace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.DiskErrorLimit == 0 {
		c.DiskErrorLimit = 3
	}
	return c
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts lookups served without running the compute function:
	// in-memory hits, disk hits, and waits coalesced onto a concurrent
	// compute. Misses counts computes actually executed.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// DiskHits is the subset of Hits served by decoding a disk record.
	DiskHits int64 `json:"disk_hits"`
	// Evictions counts entries dropped from memory by the LRU budget.
	Evictions int64 `json:"evictions"`
	// Entries/Bytes describe current in-memory residency.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// DiskEntries/DiskBytes describe the segment store (0 when disabled).
	DiskEntries int64 `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
	// DiskErrors counts disk IO failures the cache absorbed; DiskDemoted
	// reports whether they crossed Config.DiskErrorLimit and the cache fell
	// back to memory-only.
	DiskErrors  int64 `json:"disk_errors"`
	DiskDemoted bool  `json:"disk_demoted"`
}

// entry is one resident value. size includes key and accounting overhead.
type entry struct {
	key  string
	val  any
	size int64
	// prev/next form the shard's intrusive LRU list.
	prev, next *entry
}

// flight is one in-progress compute; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one LRU partition with its own lock and singleflight table.
type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	table    map[string]*entry
	inflight map[string]*flight
	// head is most-recently used; tail is the eviction candidate.
	head, tail *entry
}

// entryOverhead approximates per-entry bookkeeping bytes beyond the
// encoded payload (map cell, list pointers, key header).
const entryOverhead = 96

// Cache is the two-layer extraction cache. It is safe for concurrent use.
type Cache struct {
	codec        Codec
	shards       []*shard
	disk         *Segment
	diskErrLimit int
	faults       *fault.Injector
	tracer       *otrace.Tracer

	hits      atomic.Int64
	misses    atomic.Int64
	diskHits  atomic.Int64
	evictions atomic.Int64
	diskErrs  atomic.Int64
	demoted   atomic.Bool
}

// Open builds a cache. With cfg.Dir set, the disk segment store is opened
// (or created) there and survives Close/Open cycles; otherwise the cache
// is memory-only.
func Open(cfg Config, codec Codec) (*Cache, error) {
	if codec == nil {
		return nil, fmt.Errorf("featcache: codec required")
	}
	cfg = cfg.withDefaults()
	c := &Cache{
		codec:        codec,
		shards:       make([]*shard, cfg.Shards),
		diskErrLimit: cfg.DiskErrorLimit,
		faults:       cfg.Faults,
		tracer:       cfg.Tracer,
	}
	per := cfg.MaxBytes / int64(cfg.Shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			maxBytes: per,
			table:    map[string]*entry{},
			inflight: map[string]*flight{},
		}
	}
	if cfg.Dir != "" {
		seg, err := OpenSegment(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = seg
	}
	return c, nil
}

// Key builds the canonical cache key for a (feature fingerprint, input ID)
// pair. The separator cannot occur in fingerprints (hex) and is vanishingly
// unlikely in IDs.
func Key(fingerprint, inputID string) string {
	return fingerprint + "\x1f" + inputID
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// GetOrCompute returns the cached value for (fingerprint, inputID),
// computing and caching it on a miss. hit reports whether the compute
// function was avoided (memory hit, disk hit, or coalesced onto a
// concurrent compute for the same key).
//
// Errors are never cached: every waiter of a failed compute observes its
// error, and the next request retries. If compute panics, the panic
// propagates to the computing caller (so the engine's panic isolation sees
// the original value) while coalesced waiters receive an error.
func (c *Cache) GetOrCompute(fingerprint, inputID string, compute func() (any, error)) (v any, hit bool, err error) {
	key := Key(fingerprint, inputID)
	sh := c.shardFor(key)

	sh.mu.Lock()
	if e, ok := sh.table[key]; ok {
		sh.moveToFrontLocked(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		return e.val, true, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.hits.Add(1)
		return fl.val, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	finished := false
	finish := func(val any, size int64, err error) {
		finished = true
		fl.val, fl.err = val, err
		sh.mu.Lock()
		delete(sh.inflight, key)
		if err == nil {
			c.insertLocked(sh, key, val, size)
		}
		sh.mu.Unlock()
		close(fl.done)
	}
	defer func() {
		if p := recover(); p != nil {
			if !finished {
				finish(nil, 0, fmt.Errorf("featcache: compute for %s panicked: %v", key, p))
			}
			panic(p)
		}
	}()

	if b, ok := c.diskGet(key); ok {
		if dv, decErr := c.codec.Decode(b); decErr == nil {
			c.diskHits.Add(1)
			c.hits.Add(1)
			finish(dv, int64(len(b)), nil)
			return dv, true, nil
		}
		// An undecodable record (codec drift) falls through to a
		// recompute, which re-persists nothing: Append skips keys the
		// index already holds, so the stale record stays until an
		// Invalidate. Acceptable: fingerprints change with codec-visible
		// feature changes, making drift a development-only state.
	}

	val, err := compute()
	if err != nil {
		finish(nil, 0, err)
		return nil, false, err
	}
	b, err := c.codec.Encode(val)
	if err != nil {
		finish(nil, 0, fmt.Errorf("featcache: encode %s: %w", key, err))
		return nil, false, err
	}
	c.diskPut(key, b)
	c.misses.Add(1)
	finish(val, int64(len(b)), nil)
	return val, false, nil
}

// diskUsable reports whether the disk layer exists and has not been
// demoted away.
func (c *Cache) diskUsable() bool {
	return c.disk != nil && !c.demoted.Load()
}

// noteDiskError counts one absorbed disk IO failure and demotes the cache
// to memory-only once the configured limit is reached (a negative limit
// never demotes). Demotion is one-way for the process lifetime: a volume
// that produced DiskErrorLimit failures is assumed sick, and flip-flopping
// between layers would make cache traffic timing-dependent.
func (c *Cache) noteDiskError() {
	n := c.diskErrs.Add(1)
	if c.diskErrLimit > 0 && n >= int64(c.diskErrLimit) {
		if c.demoted.CompareAndSwap(false, true) {
			c.tracer.Start(0, "cache.demote", otrace.Int("disk_errors", n)).End()
		}
	}
}

// fire triggers an injected fault at a cache site, flattening panics into
// errors: no cache-layer failure mode — injected or real — may escape the
// disk boundary and fail an extraction.
func (c *Cache) fire(site fault.Site, key string) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("featcache: injected panic at %s: %v", site, p)
		}
	}()
	return c.faults.Fire(site, key)
}

// diskGet reads key from the segment store, absorbing failures: an
// injected fault or a real read error counts toward demotion and reports a
// miss, so the caller recomputes instead of failing the extraction.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	if !c.diskUsable() {
		return nil, false
	}
	ref := c.tracer.Start(0, "cache.disk_read")
	if err := c.fire(fault.SiteCacheRead, key); err != nil {
		c.noteDiskError()
		ref.End(otrace.String("err", "fault"))
		return nil, false
	}
	b, ok, err := c.disk.Get(key)
	if err != nil {
		c.noteDiskError()
		ref.End(otrace.String("err", "io"))
		return nil, false
	}
	ref.End(otrace.Int("bytes", int64(len(b))))
	return b, ok
}

// diskPut persists key=val best-effort: a full disk or an injected fault
// loses persistence, not correctness, and counts toward demotion.
func (c *Cache) diskPut(key string, val []byte) {
	if !c.diskUsable() {
		return
	}
	ref := c.tracer.Start(0, "cache.disk_write", otrace.Int("bytes", int64(len(val))))
	defer ref.End()
	if err := c.fire(fault.SiteCacheWrite, key); err != nil {
		c.noteDiskError()
		return
	}
	if err := c.disk.Append(key, val); err != nil {
		c.noteDiskError()
	}
}

// insertLocked adds the value under sh.mu and evicts LRU entries beyond
// the shard budget (never the entry just inserted).
func (c *Cache) insertLocked(sh *shard, key string, val any, size int64) {
	if _, ok := sh.table[key]; ok {
		return // a racing fill already inserted it
	}
	e := &entry{key: key, val: val, size: size + int64(len(key)) + entryOverhead}
	sh.table[key] = e
	sh.pushFrontLocked(e)
	sh.bytes += e.size
	for sh.bytes > sh.maxBytes && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.removeLocked(victim)
		delete(sh.table, victim.key)
		sh.bytes -= victim.size
		c.evictions.Add(1)
	}
}

func (sh *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFrontLocked(e *entry) {
	if sh.head == e {
		return
	}
	sh.removeLocked(e)
	sh.pushFrontLocked(e)
}

// Stats snapshots the counters. Entries/Bytes walk the shard headers (one
// short lock each); disk numbers come from the segment index.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		DiskHits:    c.diskHits.Load(),
		Evictions:   c.evictions.Load(),
		DiskErrors:  c.diskErrs.Load(),
		DiskDemoted: c.demoted.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += int64(len(sh.table))
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	if c.disk != nil {
		st.DiskEntries = int64(c.disk.Len())
		st.DiskBytes = c.disk.Bytes()
	}
	return st
}

// Invalidate drops every cached entry, memory and disk. In-flight
// computes complete normally and re-enter the emptied cache. The counters
// are not reset: they describe lifetime traffic.
func (c *Cache) Invalidate() error {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.table = map[string]*entry{}
		sh.head, sh.tail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
	}
	if c.disk != nil {
		return c.disk.Invalidate()
	}
	return nil
}

// Close flushes the disk index sidecar and releases the segment file.
// The in-memory layer needs no teardown.
func (c *Cache) Close() error {
	if c.disk != nil {
		return c.disk.Close()
	}
	return nil
}
