package featcache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Segment store file names inside the cache directory.
const (
	segmentFile = "cache.seg"
	indexFile   = "cache.idx"
)

// segMagic brands both files so a directory pointed at something else
// fails loudly instead of being silently truncated to zero.
var segMagic = []byte("ZFC1")

// rec locates one value inside the segment file.
type rec struct {
	off  int64 // offset of the value bytes
	vlen uint32
}

// Segment is the disk-backed half of the cache: an append-only data file
// of length-prefixed, checksummed records plus a sidecar index written on
// clean Close. Records are never rewritten in place, so a crash can only
// corrupt the tail; Open detects a torn or garbage tail by checksum and
// truncates the file back to the last complete record. When the sidecar
// index matches the data file's size, Open skips the scan entirely (the
// fast path for cleanly closed sessions).
//
// Record layout (all little-endian):
//
//	magic [4] — file header only, written once
//	per record: klen u32 | key | vlen u32 | value | crc32(key+value) u32
//
// A later record for the same key supersedes earlier ones (last write
// wins during the recovery scan), which keeps Append free of any read-
// modify-write cycle.
type Segment struct {
	mu    sync.Mutex
	f     *os.File
	dir   string
	size  int64 // bytes of validated data (including header)
	index map[string]rec
	bytes int64 // sum of live key+value payload bytes
}

// OpenSegment opens (creating if needed) the segment store in dir.
func OpenSegment(dir string) (*Segment, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("featcache: create cache dir: %w", err)
	}
	path := filepath.Join(dir, segmentFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("featcache: open segment: %w", err)
	}
	s := &Segment{f: f, dir: dir, index: map[string]rec{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load initializes the in-memory index: header check, then either the
// sidecar fast path or a full recovery scan that truncates a torn tail.
func (s *Segment) load() error {
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("featcache: stat segment: %w", err)
	}
	if st.Size() == 0 {
		if _, err := s.f.Write(segMagic); err != nil {
			return fmt.Errorf("featcache: write segment header: %w", err)
		}
		s.size = int64(len(segMagic))
		return nil
	}
	header := make([]byte, len(segMagic))
	if _, err := s.f.ReadAt(header, 0); err != nil || string(header) != string(segMagic) {
		return fmt.Errorf("featcache: %s is not a cache segment", filepath.Join(s.dir, segmentFile))
	}
	if s.loadIndexSidecar(st.Size()) {
		s.size = st.Size()
		return nil
	}
	return s.scan(st.Size())
}

// loadIndexSidecar reads the clean-close index and reports whether it is
// trustworthy: present, well-formed, and recorded against exactly the
// current data-file size. Any mismatch (crash before the sidecar was
// rewritten, partial sidecar write) falls back to the scan.
func (s *Segment) loadIndexSidecar(dataSize int64) bool {
	b, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err != nil || len(b) < len(segMagic)+12 {
		return false
	}
	if string(b[:len(segMagic)]) != string(segMagic) {
		return false
	}
	body := b[len(segMagic) : len(b)-4]
	sum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return false
	}
	if int64(binary.LittleEndian.Uint64(body[:8])) != dataSize {
		return false
	}
	body = body[8:]
	index := map[string]rec{}
	var bytes int64
	for len(body) > 0 {
		if len(body) < 4 {
			return false
		}
		klen := binary.LittleEndian.Uint32(body)
		if uint32(len(body)) < 4+klen+12 {
			return false
		}
		key := string(body[4 : 4+klen])
		off := int64(binary.LittleEndian.Uint64(body[4+klen:]))
		vlen := binary.LittleEndian.Uint32(body[4+klen+8:])
		index[key] = rec{off: off, vlen: vlen}
		bytes += int64(klen) + int64(vlen)
		body = body[4+klen+12:]
	}
	s.index, s.bytes = index, bytes
	return true
}

// scan rebuilds the index by walking every record and truncates the file
// after the last complete, checksum-valid one. It tolerates any tail
// state a crash can leave: a short length prefix, a half-written value,
// or a checksum mismatch.
func (s *Segment) scan(fileSize int64) error {
	r := io.NewSectionReader(s.f, 0, fileSize)
	if _, err := r.Seek(int64(len(segMagic)), io.SeekStart); err != nil {
		return err
	}
	good := int64(len(segMagic))
	var bytes int64
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			break
		}
		klen := binary.LittleEndian.Uint32(lenBuf[:])
		if klen == 0 || klen > 1<<20 {
			break
		}
		payload := make([]byte, int64(klen)+4)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		key := string(payload[:klen])
		vlen := binary.LittleEndian.Uint32(payload[klen:])
		if vlen > 1<<30 {
			break
		}
		val := make([]byte, int64(vlen)+4)
		if _, err := io.ReadFull(r, val); err != nil {
			break
		}
		sum := binary.LittleEndian.Uint32(val[vlen:])
		crc := crc32.NewIEEE()
		crc.Write(payload[:klen])
		crc.Write(val[:vlen])
		if crc.Sum32() != sum {
			break
		}
		valOff := good + 4 + int64(klen) + 4
		if old, ok := s.index[key]; ok {
			bytes -= int64(len(key)) + int64(old.vlen)
		}
		s.index[key] = rec{off: valOff, vlen: vlen}
		bytes += int64(len(key)) + int64(vlen)
		good = valOff + int64(vlen) + 4
	}
	s.bytes = bytes
	s.size = good
	if good < fileSize {
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("featcache: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Get returns the stored value for key, if present.
func (s *Segment) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	r, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	b := make([]byte, r.vlen)
	if _, err := s.f.ReadAt(b, r.off); err != nil {
		return nil, false, fmt.Errorf("featcache: read segment record: %w", err)
	}
	return b, true, nil
}

// Append durably records key=val. The record is built in one buffer and
// written with a single WriteAt at the validated end of the file, so a
// concurrent crash leaves at most one torn record — exactly what the
// recovery scan truncates.
func (s *Segment) Append(key string, val []byte) error {
	if len(key) == 0 || len(key) > 1<<20 {
		return fmt.Errorf("featcache: key length %d out of range", len(key))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return nil // already persisted; values are content-addressed and immutable
	}
	buf := make([]byte, 0, 4+len(key)+4+len(val)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(val)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		return fmt.Errorf("featcache: append segment record: %w", err)
	}
	valOff := s.size + 4 + int64(len(key)) + 4
	s.index[key] = rec{off: valOff, vlen: uint32(len(val))}
	s.size += int64(len(buf))
	s.bytes += int64(len(key)) + int64(len(val))
	return nil
}

// Len returns the number of stored records.
func (s *Segment) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the live payload bytes (keys + values).
func (s *Segment) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Invalidate drops every record: the data file is truncated back to its
// header and the sidecar index is removed.
func (s *Segment) Invalidate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(int64(len(segMagic))); err != nil {
		return fmt.Errorf("featcache: invalidate segment: %w", err)
	}
	s.size = int64(len(segMagic))
	s.index = map[string]rec{}
	s.bytes = 0
	os.Remove(filepath.Join(s.dir, indexFile)) //nolint:errcheck // absent is fine
	return nil
}

// Close writes the sidecar index (the fast path for the next Open) and
// closes the data file. A crash that skips Close only costs the next
// session a recovery scan, never data.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	body := make([]byte, 8, 8+32*len(s.index))
	binary.LittleEndian.PutUint64(body, uint64(s.size))
	for key, r := range s.index {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(key)))
		body = append(body, key...)
		body = binary.LittleEndian.AppendUint64(body, uint64(r.off))
		body = binary.LittleEndian.AppendUint32(body, r.vlen)
	}
	out := make([]byte, 0, len(segMagic)+len(body)+4)
	out = append(out, segMagic...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	// Best effort: a failed sidecar write only forfeits the next Open's
	// fast path.
	os.WriteFile(filepath.Join(s.dir, indexFile), out, 0o644) //nolint:errcheck
	err := s.f.Close()
	s.f = nil
	return err
}
