package featcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	b, ok, err := s.Get("k3")
	if err != nil || !ok || string(b) != "value-3" {
		t.Fatalf("get: %q %v %v", b, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}
	// Re-appending an existing key is a no-op (content-addressed values).
	sizeBefore := s.Bytes()
	if err := s.Append("k3", []byte("different")); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != sizeBefore {
		t.Fatal("duplicate append grew the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentReopenFastPathAndScan(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenSegment(dir)
	s.Append("alpha", []byte("1"))
	s.Append("beta", []byte("22"))
	s.Close() // writes the sidecar index

	// Fast path: sidecar matches the data size.
	s2, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok, _ := s2.Get("beta"); !ok || string(b) != "22" {
		t.Fatalf("fast-path reload: %q %v", b, ok)
	}
	s2.Append("gamma", []byte("333"))
	// Abandon without Close: the sidecar is now stale, forcing a scan.
	s3, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"alpha": "1", "beta": "22", "gamma": "333"} {
		if b, ok, _ := s3.Get(k); !ok || string(b) != want {
			t.Fatalf("scan reload %s: %q %v", k, b, ok)
		}
	}
	s3.Close()
}

// TestSegmentTruncatesTornTail is the crash-tolerance contract: a segment
// whose final record was half-written (process killed mid-append) must
// reopen cleanly with every complete record intact and the torn bytes
// truncated away.
func TestSegmentTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenSegment(dir)
	for i := 0; i < 5; i++ {
		s.Append(fmt.Sprintf("key-%d", i), []byte(strings.Repeat("v", 100+i)))
	}
	s.Append("torn", []byte(strings.Repeat("T", 200)))
	s.Close()
	path := filepath.Join(dir, segmentFile)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the last record's value, and remove the
	// sidecar as a crash before Close would have left it stale anyway.
	if err := os.Truncate(path, st.Size()-150); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, indexFile))

	s2, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("recovered %d records, want the 5 complete ones", s2.Len())
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%d", i)
		b, ok, err := s2.Get(k)
		if err != nil || !ok || len(b) != 100+i {
			t.Fatalf("record %s: len=%d ok=%v err=%v", k, len(b), ok, err)
		}
	}
	if _, ok, _ := s2.Get("torn"); ok {
		t.Fatal("torn record must not survive recovery")
	}
	// The file itself was truncated back to the last good record, so a
	// subsequent append lands on a clean tail and survives another reopen.
	if err := s2.Append("after", []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if b, ok, _ := s3.Get("after"); !ok || string(b) != "recovered" {
		t.Fatalf("post-recovery append lost: %q %v", b, ok)
	}
}

// TestSegmentTruncatesGarbageTail covers the other crash shape: the tail
// record is complete in length but its checksum does not match (torn
// multi-block write).
func TestSegmentTruncatesGarbageTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenSegment(dir)
	s.Append("good", []byte("keep-me"))
	s.Append("bad", []byte(strings.Repeat("B", 64)))
	s.Close()
	path := filepath.Join(dir, segmentFile)
	// Flip a byte inside the last record's value.
	b, _ := os.ReadFile(path)
	b[len(b)-10] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, indexFile))

	s2, err := OpenSegment(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", s2.Len())
	}
	if v, ok, _ := s2.Get("good"); !ok || string(v) != "keep-me" {
		t.Fatalf("good record lost: %q %v", v, ok)
	}
}

func TestSegmentRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentFile), []byte("not a cache at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(dir); err == nil {
		t.Fatal("foreign file should be rejected, not truncated")
	}
}

func TestSegmentInvalidate(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenSegment(dir)
	s.Append("a", []byte("1"))
	if err := s.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("invalidate left records")
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("invalidated key still readable")
	}
	s.Append("b", []byte("2"))
	s.Close()
	s2, _ := OpenSegment(dir)
	defer s2.Close()
	if _, ok, _ := s2.Get("a"); ok {
		t.Fatal("invalidated key survived reopen")
	}
	if v, ok, _ := s2.Get("b"); !ok || string(v) != "2" {
		t.Fatal("post-invalidate append lost")
	}
}
