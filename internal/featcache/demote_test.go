package featcache

import (
	"testing"

	"zombie/internal/fault"
)

func mustFaults(t *testing.T, spec string, seed int64) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestDiskFaultsNeverFailExtraction: with every disk read and write
// failing, GetOrCompute still returns correct values for every key — the
// disk layer absorbs its own failures.
func TestDiskFaultsNeverFailExtraction(t *testing.T) {
	c := mustOpen(t, Config{
		Dir:    t.TempDir(),
		Faults: mustFaults(t, "cache.read:err=1;cache.write:err=1", 5),
	})
	defer c.Close()
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		want := "v" + key
		v, _, err := c.GetOrCompute("fp", key, func() (any, error) { return want, nil })
		if err != nil || v != want {
			t.Fatalf("key %s: v=%v err=%v", key, v, err)
		}
	}
	st := c.Stats()
	if st.DiskErrors == 0 {
		t.Fatal("universal disk faults produced no error count")
	}
	if !st.DiskDemoted {
		t.Fatalf("cache not demoted after %d disk errors (limit default 3)", st.DiskErrors)
	}
	if st.DiskEntries != 0 {
		t.Fatalf("failed writes still persisted %d entries", st.DiskEntries)
	}
}

// TestDemotionStopsDiskTraffic: after the error limit trips, the cache is
// memory-only — the error counter freezes because the disk is no longer
// consulted, and memory hits keep working.
func TestDemotionStopsDiskTraffic(t *testing.T) {
	c := mustOpen(t, Config{
		Dir:            t.TempDir(),
		DiskErrorLimit: 2,
		Faults:         mustFaults(t, "cache.write:err=1", 5),
	})
	defer c.Close()
	for i := 0; i < 8; i++ {
		key := string(rune('a' + i))
		if _, _, err := c.GetOrCompute("fp", key, func() (any, error) { return "v", nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if !st.DiskDemoted {
		t.Fatal("limit 2 did not demote")
	}
	if st.DiskErrors != 2 {
		t.Fatalf("disk consulted after demotion: %d errors, want exactly 2", st.DiskErrors)
	}
	if v, hit, err := c.GetOrCompute("fp", "a", func() (any, error) { return "other", nil }); err != nil || !hit || v != "v" {
		t.Fatalf("memory layer broken after demotion: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestNegativeLimitNeverDemotes: DiskErrorLimit < 0 keeps retrying the
// disk on every operation, errors notwithstanding.
func TestNegativeLimitNeverDemotes(t *testing.T) {
	c := mustOpen(t, Config{
		Dir:            t.TempDir(),
		DiskErrorLimit: -1,
		Faults:         mustFaults(t, "cache.write:err=1", 5),
	})
	defer c.Close()
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if _, _, err := c.GetOrCompute("fp", key, func() (any, error) { return "v", nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.DiskDemoted {
		t.Fatal("negative limit demoted")
	}
	if st.DiskErrors != 10 {
		t.Fatalf("disk errors = %d, want 10 (one per write, never demoted)", st.DiskErrors)
	}
}

// TestReadFaultsFallBackToRecompute: an injected read fault on a key that
// IS on disk (written before faults applied) recomputes instead of
// failing, and counts toward demotion.
func TestReadFaultsFallBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	warm := mustOpen(t, Config{Dir: dir})
	if _, _, err := warm.GetOrCompute("fp", "k", func() (any, error) { return "stored", nil }); err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}

	c := mustOpen(t, Config{Dir: dir, Faults: mustFaults(t, "cache.read:err=1", 5)})
	defer c.Close()
	calls := 0
	v, hit, err := c.GetOrCompute("fp", "k", func() (any, error) { calls++; return "stored", nil })
	if err != nil || hit || v != "stored" || calls != 1 {
		t.Fatalf("faulted read did not recompute: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	if st := c.Stats(); st.DiskErrors == 0 {
		t.Fatal("read fault not counted")
	}
}

// TestCachePanicFaultsAreFlattened: a panic-kind fault at a cache site is
// absorbed at the disk boundary like any other IO error — it must never
// escape into the extraction path.
func TestCachePanicFaultsAreFlattened(t *testing.T) {
	c := mustOpen(t, Config{
		Dir:    t.TempDir(),
		Faults: mustFaults(t, "cache.write:panic=1", 5),
	})
	defer c.Close()
	v, _, err := c.GetOrCompute("fp", "k", func() (any, error) { return "v", nil })
	if err != nil || v != "v" {
		t.Fatalf("panic fault escaped: v=%v err=%v", v, err)
	}
	if st := c.Stats(); st.DiskErrors != 1 {
		t.Fatalf("panic fault not counted as disk error: %+v", st)
	}
}

// TestHealthyDiskUnaffected: with no faults the new plumbing is inert —
// zero errors, no demotion, entries persisted.
func TestHealthyDiskUnaffected(t *testing.T) {
	c := mustOpen(t, Config{Dir: t.TempDir()})
	defer c.Close()
	if _, _, err := c.GetOrCompute("fp", "k", func() (any, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskErrors != 0 || st.DiskDemoted || st.DiskEntries != 1 {
		t.Fatalf("healthy disk path changed: %+v", st)
	}
}
