// Package zombie is the public API of the Zombie system, a reproduction of
// "Input selection for fast feature engineering" (Anderson & Cafarella,
// ICDE 2016).
//
// Zombie accelerates the feature-engineering inner loop — run feature code
// over a corpus, train a model, check quality, edit, repeat — by choosing
// *which* raw inputs to process next. Offline, the corpus is clustered
// into index groups by cheap generic features; online, a multi-armed
// bandit treats each group as an arm and steers processing toward groups
// whose inputs actually improve the model, stopping early once the
// learning curve plateaus.
//
// Minimal usage:
//
//	store := zombie.NewMemStore(inputs)
//	groups, _ := zombie.BuildIndex(store, zombie.IndexKMeansText, 32, 42)
//	task, _ := zombie.NewTask("mytask", store, myFeature, myModelFactory,
//	    zombie.MetricF1, 1, zombie.CostModel{}, zombie.TaskOptions{}, zombie.NewRNG(42))
//	eng, _ := zombie.NewEngine(zombie.Config{Policy: "eps-greedy:0.1",
//	    EarlyStop: zombie.EarlyStopConfig{Enabled: true}})
//	result, _ := eng.Run(task, groups)
//	fmt.Println(result.Summary())
//
// The package re-exports the system's building blocks as type aliases so
// applications only ever import "zombie"; see the examples/ directory for
// complete programs.
package zombie

import (
	"fmt"
	"strings"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// Raw-data surface.
type (
	// Input is one raw data object (page, song record, image descriptor).
	Input = corpus.Input
	// Truth carries ground-truth annotations used only for labeling.
	Truth = corpus.Truth
	// Store is a read-only input collection.
	Store = corpus.Store
	// MemStore is the in-memory Store.
	MemStore = corpus.MemStore
	// Kind distinguishes text from numeric payloads.
	Kind = corpus.Kind
)

// Raw-data constructors and constants.
var (
	// NewMemStore wraps a slice of inputs in a Store.
	NewMemStore = corpus.NewMemStore
	// ReadJSONL and WriteJSONL move corpora to and from disk.
	ReadJSONL  = corpus.ReadJSONL
	WriteJSONL = corpus.WriteJSONL
	// ReadJSONLTolerant skips corrupt lines (reporting each) instead of
	// aborting — the loader for corpora collected in the wild.
	ReadJSONLTolerant = corpus.ReadJSONLTolerant
)

// Payload kinds.
const (
	TextKind    = corpus.TextKind
	NumericKind = corpus.NumericKind
)

// Feature-engineering surface.
type (
	// FeatureFunc is one version of user feature code.
	FeatureFunc = featurepipe.FeatureFunc
	// FeatureResult is what feature code returns per input.
	FeatureResult = featurepipe.Result
	// CostModel simulates per-input processing expense.
	CostModel = featurepipe.CostModel
	// Task bundles corpus + feature code + learner + metric + split.
	Task = featurepipe.Task
	// TaskOptions configures NewTask.
	TaskOptions = featurepipe.TaskOptions
	// Session is an ordered series of feature-code versions.
	Session = featurepipe.Session
)

// NewTask reserves a holdout and assembles a Task; see featurepipe.NewTask.
var NewTask = featurepipe.NewTask

// NewSession builds a feature-engineering session.
var NewSession = featurepipe.NewSession

// Learner surface (models plug into Task.NewModel).
type (
	// Model is the minimal learner contract (incremental PartialFit).
	Model = learner.Model
	// Example is one training/evaluation example.
	Example = learner.Example
	// FeatureVector is a dense-or-sparse feature vector.
	FeatureVector = learner.FeatureVector
	// Metric selects the holdout quality measure.
	Metric = learner.Metric
)

// Metrics.
const (
	MetricAccuracy = learner.MetricAccuracy
	MetricF1       = learner.MetricF1
	MetricMacroF1  = learner.MetricMacroF1
	MetricR2       = learner.MetricR2
	MetricNegRMSE  = learner.MetricNegRMSE
)

// Vector constructors.
var (
	// DenseVec wraps a dense feature slice.
	DenseVec = learner.DenseVec
	// SparseVec wraps a sparse vector.
	SparseVec = learner.SparseVec
)

// Engine surface.
type (
	// Config parameterizes the engine (policy, reward, early stop).
	Config = core.Config
	// EarlyStopConfig tunes plateau detection.
	EarlyStopConfig = core.EarlyStopConfig
	// RewardKind selects the reward function.
	RewardKind = core.RewardKind
	// Engine runs feature-evaluation inner loops.
	Engine = core.Engine
	// Result reports one run.
	Result = core.RunResult
	// CurvePoint is one learning-curve sample.
	CurvePoint = core.CurvePoint
	// SessionResult reports a whole engineering session.
	SessionResult = core.SessionResult
	// StopReason records why a run ended.
	StopReason = core.StopReason
	// ArmStat is a point-in-time view of one index group's bandit
	// statistics, as reported in Result.Arms.
	ArmStat = bandit.ArmSnapshot
)

// Reward kinds.
const (
	RewardUsefulness   = core.RewardUsefulness
	RewardQualityDelta = core.RewardQualityDelta
	RewardHybrid       = core.RewardHybrid
)

// Stop reasons.
const (
	StopExhausted = core.StopExhausted
	StopBudget    = core.StopBudget
	StopEarly     = core.StopEarly
)

// PolicySpec names a bandit policy for Config.Policy, e.g.
// "eps-greedy:0.1", "ucb1:1", "thompson"; see PolicySpecs for the list.
type PolicySpec = bandit.Spec

// NewEngine validates cfg and returns an engine.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// Index surface.
type (
	// Groups is a partition of the corpus into bandit arms.
	Groups = index.Groups
	// Grouper builds index groups.
	Grouper = index.Grouper
	// Vectorizer produces cheap index features.
	Vectorizer = index.Vectorizer
)

// LoadGroups reads groups persisted with Groups.Save.
var LoadGroups = index.LoadGroups

// IndexStrategy names a built-in index-construction strategy for
// BuildIndex.
type IndexStrategy string

// Built-in index strategies.
const (
	// IndexKMeansText clusters hashed bag-of-words vectors (text corpora).
	IndexKMeansText IndexStrategy = "kmeans-text"
	// IndexKMeansTFIDF clusters hashed tf-idf vectors (text corpora).
	IndexKMeansTFIDF IndexStrategy = "kmeans-tfidf"
	// IndexKMeansNumeric clusters standardized numeric payloads.
	IndexKMeansNumeric IndexStrategy = "kmeans-numeric"
	// IndexAttribute buckets on a Meta key: "attribute:<key>".
	IndexAttribute IndexStrategy = "attribute"
	// IndexLSHText partitions text by random-hyperplane signatures over
	// hashed bags of words: one pass, no iteration, noisier groups.
	IndexLSHText IndexStrategy = "lsh-text"
	// IndexLSHNumeric is the numeric-payload LSH variant.
	IndexLSHNumeric IndexStrategy = "lsh-numeric"
	// IndexHash partitions by ID hash (uninformative baseline).
	IndexHash IndexStrategy = "hash"
	// IndexRandom deals inputs into balanced random groups.
	IndexRandom IndexStrategy = "random"
)

// BuildIndex constructs k index groups over the store using a named
// strategy. The attribute strategy takes its Meta key after a colon, e.g.
// "attribute:category". Construction is deterministic in seed.
func BuildIndex(store Store, strategy IndexStrategy, k int, seed int64) (*Groups, error) {
	g, err := grouperFor(store, strategy)
	if err != nil {
		return nil, err
	}
	return g.Group(store, k, rng.New(seed))
}

func grouperFor(store Store, strategy IndexStrategy) (Grouper, error) {
	s := string(strategy)
	switch {
	case s == string(IndexKMeansText):
		return &index.KMeansGrouper{Vectorizer: index.NewHashedText(256)}, nil
	case s == string(IndexKMeansTFIDF):
		tfidf := index.NewTFIDF(256)
		tfidf.Fit(store)
		return &index.KMeansGrouper{Vectorizer: tfidf}, nil
	case s == string(IndexKMeansNumeric):
		dim := numericDim(store)
		if dim == 0 {
			return nil, fmt.Errorf("zombie: %s needs numeric inputs", strategy)
		}
		v := index.NewNumeric(dim)
		v.FitStandardize(store)
		return &index.KMeansGrouper{Vectorizer: v}, nil
	case s == string(IndexLSHText):
		return &index.LSHGrouper{Vectorizer: index.NewHashedText(256)}, nil
	case s == string(IndexLSHNumeric):
		dim := numericDim(store)
		if dim == 0 {
			return nil, fmt.Errorf("zombie: %s needs numeric inputs", strategy)
		}
		v := index.NewNumeric(dim)
		v.FitStandardize(store)
		return &index.LSHGrouper{Vectorizer: v}, nil
	case strings.HasPrefix(s, string(IndexAttribute)):
		key := strings.TrimPrefix(s, string(IndexAttribute))
		key = strings.TrimPrefix(key, ":")
		if key == "" {
			return nil, fmt.Errorf("zombie: attribute strategy needs a key, e.g. %q", "attribute:category")
		}
		return &index.AttributeGrouper{Attr: key}, nil
	case s == string(IndexHash):
		return index.HashGrouper{}, nil
	case s == string(IndexRandom):
		return index.RandomGrouper{}, nil
	default:
		return nil, fmt.Errorf("zombie: unknown index strategy %q", strategy)
	}
}

// numericDim returns the dimensionality of the first numeric input, or 0.
func numericDim(store Store) int {
	for i := 0; i < store.Len(); i++ {
		if in := store.Get(i); in.Kind == corpus.NumericKind {
			return len(in.Values)
		}
	}
	return 0
}

// NewRNG returns the deterministic random source used across the system.
func NewRNG(seed int64) *rng.RNG { return rng.New(seed) }

// PolicySpecs returns example bandit-policy specs accepted by
// Config.Policy.
func PolicySpecs() []string { return bandit.KnownSpecs() }
