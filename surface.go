package zombie

import (
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/learner"
)

// Synthetic corpus generators. These reproduce the statistical structure
// of the paper's evaluation datasets (Wikipedia crawl, Million Song
// Dataset, labeled images); see DESIGN.md §3 for the substitution
// rationale. All are deterministic in the supplied RNG.
type (
	// WikiConfig parameterizes the wiki-like extraction corpus.
	WikiConfig = corpus.WikiConfig
	// SongConfig parameterizes the MSD-like song corpus.
	SongConfig = corpus.SongConfig
	// ImageConfig parameterizes the rare-class image corpus.
	ImageConfig = corpus.ImageConfig
)

// OpenDiskStore opens a JSONL corpus lazily from disk (for corpora larger
// than RAM); see corpus.DiskStore.
var OpenDiskStore = corpus.OpenDiskStore

// Generator entry points and their default configurations.
var (
	DefaultWikiConfig  = corpus.DefaultWikiConfig
	DefaultSongConfig  = corpus.DefaultSongConfig
	DefaultImageConfig = corpus.DefaultImageConfig
	GenerateWiki       = corpus.GenerateWiki
	GenerateSongs      = corpus.GenerateSongs
	GenerateImages     = corpus.GenerateImages
)

// Canonical feature-code versions for the three evaluation tasks, plus
// the FuncCore embedding for user-written feature functions.
type (
	// FuncCore carries the name/dim/classes identity of a FeatureFunc;
	// embed it in custom feature code.
	FuncCore = featurepipe.FuncCore
	// WikiFeature, SongFeature and ImageFeature are the built-in
	// feature-code families.
	WikiFeature  = featurepipe.WikiFeature
	SongFeature  = featurepipe.SongFeature
	ImageFeature = featurepipe.ImageFeature
	// FaultyFeature wraps feature code with deterministic fault
	// injection, for testing pipelines against buggy code.
	FaultyFeature = featurepipe.FaultyFeature
)

// Feature-code constructors and the canonical engineering session.
var (
	NewWikiFeature      = featurepipe.NewWikiFeature
	NewSongFeature      = featurepipe.NewSongFeature
	NewImageFeature     = featurepipe.NewImageFeature
	StandardWikiSession = featurepipe.StandardWikiSession
)

// Learners. All implement Model (incremental PartialFit); classifiers
// additionally implement PredictClass, regressors Predict.
type (
	// LRSchedule selects the SGD learning-rate schedule.
	LRSchedule = learner.LRSchedule
	// Holdout evaluates models against a fixed labeled set.
	Holdout = learner.Holdout
)

// Learning-rate schedules.
const (
	ConstantLR   = learner.ConstantLR
	InvScalingLR = learner.InvScalingLR
)

// Learner constructors.
var (
	// NewLogisticSGD returns a binary logistic classifier (SGD + L2).
	NewLogisticSGD = learner.NewLogisticSGD
	// NewSoftmaxSGD returns a multiclass maximum-entropy classifier.
	NewSoftmaxSGD = learner.NewSoftmaxSGD
	// NewPerceptron returns a multiclass perceptron.
	NewPerceptron = learner.NewPerceptron
	// NewPassiveAggressive returns a binary PA-I classifier.
	NewPassiveAggressive = learner.NewPassiveAggressive
	// NewMultinomialNB returns a multinomial naive Bayes classifier.
	NewMultinomialNB = learner.NewMultinomialNB
	// NewGaussianNB returns a Gaussian naive Bayes classifier.
	NewGaussianNB = learner.NewGaussianNB
	// NewKNN returns a k-nearest-neighbors model.
	NewKNN = learner.NewKNN
	// NewDecisionTree returns a CART-style classification tree.
	NewDecisionTree = learner.NewDecisionTree
	// NewLinearRegSGD returns an SGD linear regressor.
	NewLinearRegSGD = learner.NewLinearRegSGD
	// NewRidgeClosed returns a closed-form ridge regressor.
	NewRidgeClosed = learner.NewRidgeClosed
	// NewHoldout builds a holdout evaluator over labeled examples.
	NewHoldout = learner.NewHoldout
	// KFold cross-validates a model family over labeled examples.
	KFold = learner.KFold
	// NewCompositeFeature concatenates feature functions into one.
	NewCompositeFeature = featurepipe.NewCompositeFeature
)
