package zombie

// One testing.B benchmark per paper table/figure (DESIGN.md §4). Each
// bench executes its experiment end-to-end at reduced scale through the
// same harness cmd/zombie-bench runs at full scale, so `go test -bench=.`
// exercises every reproduction path. Reported ns/op is the wall cost of
// regenerating the artifact at bench scale, not the simulated times the
// tables contain.

import (
	"io"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/experiments"
	"zombie/internal/featurepipe"
	"zombie/internal/learner"
)

// benchCfg keeps benches fast while preserving every code path; the
// 400-input floor applies per task.
var benchCfg = experiments.Config{Scale: 0.05, Seed: 20160516}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchCfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1DatasetStats regenerates the dataset-statistics table.
func BenchmarkT1DatasetStats(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2HeadlineSpeedup regenerates the headline scan-vs-zombie
// speedup table (paper: up to 8x).
func BenchmarkT2HeadlineSpeedup(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3Session regenerates the end-to-end engineering-session table
// (paper: 8h -> 5h).
func BenchmarkT3Session(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4IndexCost regenerates the index amortization table.
func BenchmarkT4IndexCost(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkF1LearningCurves regenerates the learning-curve series.
func BenchmarkF1LearningCurves(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2GroupCount regenerates the speedup-vs-k sweep.
func BenchmarkF2GroupCount(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3Policies regenerates the bandit-policy comparison.
func BenchmarkF3Policies(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkF4Rewards regenerates the reward-function ablation.
func BenchmarkF4Rewards(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkF5EarlyStop regenerates the early-stopping sweep.
func BenchmarkF5EarlyStop(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkF6Indexing regenerates the indexing-strategy ablation.
func BenchmarkF6Indexing(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkF7Nonstationary regenerates the arm-statistics aging ablation.
func BenchmarkF7Nonstationary(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkF8Scaling regenerates the speedup-vs-corpus-size extension.
func BenchmarkF8Scaling(b *testing.B) { benchExperiment(b, "F8") }

// --- engine micro-benchmarks -------------------------------------------

// benchTask builds a small image task + groups once for engine benches.
func benchTask(b *testing.B) (*Task, *Groups) {
	b.Helper()
	gen := corpus.DefaultImageConfig()
	gen.N = 2000
	inputs, err := corpus.GenerateImages(gen, NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	store := NewMemStore(inputs)
	feature := featurepipe.NewImageFeature(1, gen)
	task, err := NewTask("bench", store, feature,
		func(f FeatureFunc) Model { return learner.NewGaussianNB(f.Dim(), 2, 1e-3) },
		MetricF1, 1, CostModel{}, TaskOptions{}, NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	groups, err := BuildIndex(store, IndexKMeansNumeric, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	return task, groups
}

// BenchmarkEngineZombieRun measures one bandit-selected evaluation run of
// 500 inputs (extraction + learner update + periodic holdout evaluation).
func BenchmarkEngineZombieRun(b *testing.B) {
	task, groups := benchTask(b)
	eng, err := NewEngine(Config{Seed: 4, MaxInputs: 500})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(task, groups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScanRun measures the random-scan baseline on the same
// budget, isolating the bandit's overhead.
func BenchmarkEngineScanRun(b *testing.B) {
	task, _ := benchTask(b)
	eng, err := NewEngine(Config{Seed: 4, MaxInputs: 500})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunScan(task, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures k-means index construction over 2000
// numeric inputs, the amortized offline cost of experiment T4.
func BenchmarkIndexBuild(b *testing.B) {
	gen := corpus.DefaultImageConfig()
	gen.N = 2000
	inputs, err := corpus.GenerateImages(gen, NewRNG(5))
	if err != nil {
		b.Fatal(err)
	}
	store := NewMemStore(inputs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(store, IndexKMeansNumeric, 32, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
