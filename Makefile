# Development workflow for the zombie repo. `make ci` is the full gate the
# first goroutines in internal/server made meaningful: the race detector
# runs over every package, and the smoke targets prove the determinism
# contracts (cache, parallelism, fault injection, crash-resume) end to
# end — crash-smoke kills a -state-dir server mid-run and requires the
# restarted process to finish the run with an identical curve.

# The smoke recipes use bash-isms (trap on EXIT inside a one-liner,
# $(( )) arithmetic); pin the shell so they behave the same under any
# make invocation, including CI images whose /bin/sh is dash.
SHELL := /bin/bash

GO ?= go

# Build identity, injected into internal/buildinfo at link time so
# -version and /healthz name the exact build. A plain `go build` still
# works — buildinfo falls back to the toolchain's VCS stamp.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X zombie/internal/buildinfo.Version=$(VERSION) -X zombie/internal/buildinfo.Commit=$(COMMIT)

# staticcheck runs through `go run` at a pinned version so neither CI nor
# developer machines need a global install; 2025.1.1 is the release line
# that understands this repo's go1.22 directive on current toolchains.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1

# Packages under the coverage floor gate, and the floor itself. These are
# the robustness-critical packages: the fault injector, the engine that
# quarantines around it, the cache that degrades under it, and the journal
# the control plane's crash-resume rides on.
COVER_PKGS := ./internal/core ./internal/featcache ./internal/fault ./internal/runstore
COVER_FLOOR := 70

# Smoke targets bind loopback ports derived from SMOKE_PORT_BASE (each
# target uses a fixed offset below 40) so two checkouts or CI matrix
# entries can run side by side by exporting different bases.
SMOKE_PORT_BASE ?= 18800

# When SMOKE_DIR is set, smoke targets put their work directories (logs,
# corpora, state dirs) under it and keep them after the run — CI points
# it at a scratch path and uploads it as the failure artifact. Unset,
# each target uses a private mktemp dir removed on exit.
SMOKE_DIR ?=

# smoke_tmp initializes $$tmp (and $$keep) for a smoke recipe: a kept
# directory under SMOKE_DIR when set, else a throwaway mktemp dir.
define smoke_tmp
if [ -n "$(SMOKE_DIR)" ]; then tmp="$(SMOKE_DIR)/$(1)"; rm -rf "$$tmp"; mkdir -p "$$tmp"; keep=1; else tmp=$$(mktemp -d); keep=; fi
endef

.PHONY: all build bin test race vet fmt-check lint cover bench-smoke cache-smoke chaos-smoke obs-smoke session-smoke bench-gate dist-smoke batch-smoke crash-smoke trace-smoke ci

all: build

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

# bin produces the stamped binaries under bin/.
bin:
	$(GO) build -ldflags "$(LDFLAGS)" -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs staticcheck pinned through `go run`. The first invocation
# downloads the module, which needs the network — in an offline sandbox
# that manifests as a resolver/dial error, and the target degrades to a
# notice instead of failing the build. Real findings still fail.
lint:
	@out="$$($(GO) run $(STATICCHECK) ./... 2>&1)"; st=$$?; \
	if [ $$st -ne 0 ] && echo "$$out" | grep -qE 'no such host|dial tcp|i/o timeout|connection refused|proxyconnect'; then \
		echo "lint: staticcheck not cached and network unavailable; skipping"; \
	elif [ $$st -ne 0 ]; then \
		echo "$$out"; exit 1; \
	else \
		echo "lint OK"; \
	fi

# cover enforces a per-package coverage floor on the robustness-critical
# packages. A package slipping under the floor fails the gate and names
# itself; the rest still report so one failure shows the whole picture.
cover:
	@fail=0; \
	for pkg in $(COVER_PKGS); do \
		line="$$($(GO) test -cover $$pkg | tail -1)"; \
		pct="$$(echo "$$line" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*')"; \
		if [ -z "$$pct" ]; then \
			echo "cover: no coverage reported for $$pkg:"; echo "$$line"; fail=1; continue; \
		fi; \
		if awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(p < f)}'; then \
			echo "cover: $$pkg at $$pct% is under the $(COVER_FLOOR)% floor"; fail=1; \
		else \
			echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
		fi; \
	done; exit $$fail

# bench-smoke runs every benchmark exactly once — not for timing, but to
# catch benchmarks that rot (compile errors, panics, fixture drift).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# cache-smoke proves the extraction cache's determinism contract end to
# end: the same workload, cold then warm against one -cache-dir, must emit
# byte-identical output (the cache: counter line aside) and the warm run
# must actually serve hits.
cache-smoke:
	@$(call smoke_tmp,cache-smoke); trap '[ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 800 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 -cache-dir $$tmp/cache > $$tmp/cold.out && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 -cache-dir $$tmp/cache > $$tmp/warm.out && \
	grep -v '^cache:' $$tmp/cold.out > $$tmp/cold.cmp && \
	grep -v '^cache:' $$tmp/warm.out > $$tmp/warm.cmp && \
	if ! cmp -s $$tmp/cold.cmp $$tmp/warm.cmp; then \
		echo "cache-smoke: cold and warm outputs differ"; \
		diff $$tmp/cold.cmp $$tmp/warm.cmp; exit 1; \
	fi && \
	if ! grep -q '^cache: hits=[1-9]' $$tmp/warm.out; then \
		echo "cache-smoke: warm run served no cache hits"; \
		grep '^cache:' $$tmp/warm.out; exit 1; \
	fi && \
	echo "cache-smoke OK: $$(grep '^cache:' $$tmp/warm.out)"

# chaos-smoke proves the fault-tolerance contract end to end:
#   1. a run with injected extract/corpus faults completes (no stop=failed),
#      quarantines the faulted inputs on visible quarantine: lines, and is
#      byte-identical across two same-seed invocations;
#   2. a run whose disk cache always fails demotes to memory-only
#      (demoted=true) and still emits the exact cache-off output.
chaos-smoke:
	@$(call smoke_tmp,chaos-smoke); trap '[ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	spec='extract:err=0.04,panic=0.04;corpus.read:err=0.03'; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 800 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 \
		-faults "$$spec" -fault-seed 7 > $$tmp/a.out 2>/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 \
		-faults "$$spec" -fault-seed 7 > $$tmp/b.out 2>/dev/null && \
	if ! cmp -s $$tmp/a.out $$tmp/b.out; then \
		echo "chaos-smoke: same-seed faulted runs differ"; \
		diff $$tmp/a.out $$tmp/b.out; exit 1; \
	fi && \
	if grep -q 'stop=failed' $$tmp/a.out; then \
		echo "chaos-smoke: run degraded to stop=failed under the smoke fault rates"; \
		head -1 $$tmp/a.out; exit 1; \
	fi && \
	nq=$$(grep -c '^quarantine:' $$tmp/a.out); \
	if [ "$$nq" -lt 20 ]; then \
		echo "chaos-smoke: only $$nq quarantine lines, want >= 20 (5% of 400)"; exit 1; \
	fi && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 \
		> $$tmp/plain.out 2>/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 \
		-cache-dir $$tmp/chaoscache -faults 'cache.read:err=1;cache.write:err=1' -fault-seed 7 \
		> $$tmp/demoted.out 2>/dev/null && \
	if ! grep -q 'demoted=true' $$tmp/demoted.out; then \
		echo "chaos-smoke: always-failing disk cache did not demote"; \
		grep '^cache:' $$tmp/demoted.out; exit 1; \
	fi && \
	grep -v '^cache:' $$tmp/demoted.out > $$tmp/demoted.cmp && \
	if ! cmp -s $$tmp/plain.out $$tmp/demoted.cmp; then \
		echo "chaos-smoke: demoted-cache output diverged from cache-off output"; \
		diff $$tmp/plain.out $$tmp/demoted.cmp; exit 1; \
	fi && \
	echo "chaos-smoke OK: $$nq quarantined, same-seed identical, disk faults demoted cleanly"

# obs-smoke proves the telemetry contract end to end against a live
# zombie-serve: /healthz carries build identity, a traced run populates
# both /metrics expositions (the stable flat-JSON keys and Prometheus
# TYPE/bucket lines), and the terminal trace snapshot carries events and
# a non-zero phase breakdown. Needs curl + jq (standard on CI images).
obs-smoke:
	@command -v curl >/dev/null && command -v jq >/dev/null || { echo "obs-smoke: needs curl and jq"; exit 1; }; \
	$(call smoke_tmp,obs-smoke); pid=; trap 'kill $$pid 2>/dev/null; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	port=$$(( $(SMOKE_PORT_BASE) + 8 )); base=http://127.0.0.1:$$port; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) build -ldflags "$(LDFLAGS)" -o $$tmp/zombie-serve ./cmd/zombie-serve && \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$port -corpus wiki=$$tmp/wiki.jsonl -log-format json >$$tmp/serve.log 2>&1 & pid=$$!; }; \
	up=0; for i in $$(seq 1 50); do curl -sf $$base/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "obs-smoke: server never came up"; cat $$tmp/serve.log; exit 1; }; \
	commit=$$(curl -sf $$base/healthz | jq -r '.commit // empty'); \
	[ -n "$$commit" ] && [ "$$commit" != unknown ] || { echo "obs-smoke: healthz build identity missing (commit=$$commit)"; exit 1; }; \
	id=$$(curl -sf -X POST $$base/runs -d '{"corpus":"wiki","task":"wiki","max_inputs":150,"eval_every":25,"trace":true}' | jq -r '.id // empty'); \
	[ -n "$$id" ] || { echo "obs-smoke: run submission failed"; cat $$tmp/serve.log; exit 1; }; \
	state=; for i in $$(seq 1 200); do \
		state=$$(curl -sf $$base/runs/$$id | jq -r .state); \
		case $$state in done|failed|cancelled) break;; esac; sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "obs-smoke: run ended in state $$state"; curl -s $$base/runs/$$id; exit 1; }; \
	curl -sf $$base/metrics > $$tmp/flat.json && \
	for key in runs_completed inputs_processed feat_cache_hits queue_depth \
			zombie_run_seconds_count zombie_phase_seconds_extract_count zombie_http_request_seconds_count; do \
		jq -e --arg k $$key 'has($$k)' $$tmp/flat.json >/dev/null || \
			{ echo "obs-smoke: flat /metrics missing key $$key"; cat $$tmp/flat.json; exit 1; }; \
	done && \
	curl -sf "$$base/metrics?format=prom" > $$tmp/metrics.prom && \
	grep -q '^# TYPE runs_completed counter' $$tmp/metrics.prom && \
	grep -q 'zombie_phase_seconds_bucket{phase="extract",le="+Inf"}' $$tmp/metrics.prom || \
		{ echo "obs-smoke: Prometheus exposition incomplete"; head -40 $$tmp/metrics.prom; exit 1; }; \
	curl -sf $$base/runs/$$id/trace > $$tmp/trace.json && \
	nev=$$(jq '.events | length' $$tmp/trace.json); \
	extract_ms=$$(jq -r '.phase_ms.extract // 0' $$tmp/trace.json); \
	[ "$$nev" -ge 1 ] || { echo "obs-smoke: trace snapshot has no events"; cat $$tmp/trace.json; exit 1; }; \
	awk -v x="$$extract_ms" 'BEGIN{exit !(x > 0)}' || \
		{ echo "obs-smoke: terminal trace phase_ms.extract not > 0 (got $$extract_ms)"; exit 1; }; \
	echo "obs-smoke OK: $$nev trace events, extract $$extract_ms ms, both expositions served"

# session-smoke proves the recipe-session workflow end to end against a
# live zombie-serve: open a workspace, submit recipe v1, edit one part
# and submit v2, then assert the v2 run reused cached extractions for
# the unchanged parts (cache_hits > 0, shared_parts = 2) and was
# warm-started from v1's arm statistics (warm_start.applied). Also
# exercises the zombie -recipe CLI path against the same recipe file.
# Needs curl + jq (standard on CI images).
session-smoke:
	@command -v curl >/dev/null && command -v jq >/dev/null || { echo "session-smoke: needs curl and jq"; exit 1; }; \
	$(call smoke_tmp,session-smoke); pid=; trap 'kill $$pid 2>/dev/null; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	port=$$(( $(SMOKE_PORT_BASE) + 28 )); base=http://127.0.0.1:$$port; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) build -ldflags "$(LDFLAGS)" -o $$tmp/zombie-serve ./cmd/zombie-serve && \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$port -corpus wiki=$$tmp/wiki.jsonl -log-format json >$$tmp/serve.log 2>&1 & pid=$$!; }; \
	up=0; for i in $$(seq 1 50); do curl -sf $$base/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "session-smoke: server never came up"; cat $$tmp/serve.log; exit 1; }; \
	sid=$$(curl -sf -X POST $$base/sessions \
		-d '{"corpus":"wiki","task":"wiki","k":8,"seed":3,"max_inputs":150,"eval_every":25}' | jq -r '.id // empty'); \
	[ -n "$$sid" ] || { echo "session-smoke: session creation failed"; cat $$tmp/serve.log; exit 1; }; \
	printf '%s' '{"name":"smoke","parts":[{"name":"base","kind":"wiki","version":2},{"name":"mid","kind":"wiki","version":4,"deps":["base"]},{"name":"top","kind":"wiki","version":5,"deps":["mid"]}]}' > $$tmp/rec1.json; \
	jq '.parts[2].version = 6' $$tmp/rec1.json > $$tmp/rec2.json; \
	for rec in rec1 rec2; do \
		curl -sf -X POST $$base/sessions/$$sid/runs --data-binary @$$tmp/$$rec.json >/dev/null || \
			{ echo "session-smoke: submitting $$rec failed"; cat $$tmp/serve.log; exit 1; }; \
		state=; for i in $$(seq 1 300); do \
			state=$$(curl -sf $$base/sessions/$$sid | jq -r '.versions[-1].state'); \
			case $$state in done|failed) break;; esac; sleep 0.1; \
		done; \
		[ "$$state" = done ] || { echo "session-smoke: $$rec ended in state $$state"; curl -s $$base/sessions/$$sid; exit 1; }; \
	done; \
	curl -sf $$base/sessions/$$sid > $$tmp/session.json; \
	hits=$$(jq -r '.versions[1].cache_hits' $$tmp/session.json); \
	shared=$$(jq -r '.versions[1].shared_parts' $$tmp/session.json); \
	applied=$$(jq -r '.versions[1].warm_start.applied' $$tmp/session.json); \
	[ "$$hits" -gt 0 ] || { echo "session-smoke: v2 cache_hits not > 0 (got $$hits)"; cat $$tmp/session.json; exit 1; }; \
	[ "$$shared" = 2 ] || { echo "session-smoke: v2 shared_parts != 2 (got $$shared)"; cat $$tmp/session.json; exit 1; }; \
	[ "$$applied" = true ] || { echo "session-smoke: v2 warm_start.applied != true"; cat $$tmp/session.json; exit 1; }; \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -recipe $$tmp/rec2.json -max 150 > $$tmp/cli.out 2>&1 || \
		{ echo "session-smoke: zombie -recipe run failed"; cat $$tmp/cli.out; exit 1; }; \
	nparts=$$(grep -c '^recipe: part=' $$tmp/cli.out); \
	[ "$$nparts" = 3 ] || { echo "session-smoke: zombie -recipe printed $$nparts part lines, want 3"; cat $$tmp/cli.out; exit 1; }; \
	echo "session-smoke OK: v2 warm-started with $$hits cache hits, $$shared/3 parts reused, CLI ran $$nparts-part recipe"

# bench-gate re-proves the determinism and performance contracts through
# the bench harness. CI runs it as its own step after `make ci` so a
# regression is visible by name. Three checks:
#   1. the wall-clock-free experiments (T2, F1) and the distributed
#      invariance experiment (D1) must emit byte-identical output at
#      -parallel 2 vs the sequential baseline;
#   2. no inner-loop phase's share of the reference run's phase time may
#      grow more than 10% (plus a 3-point absolute floor, so the
#      sub-millisecond phases don't flap on timer jitter) over the
#      committed BENCH_baseline.json;
#   3. the span tracer must be free and invisible: the traced reference
#      run's results byte-identical to the untraced run's, with best-of-N
#      wall overhead under 5% (the report's tracing block). A breach gets
#      one re-measure before failing — the reference run is milliseconds,
#      so a busy box can push a single measurement past the margin;
#   4. the zombie CLI sharded over 1 and 4 in-process dist workers must
#      emit output byte-identical to the single-process run, the
#      wall-clock (built:), per-worker (dist:), and cache counter lines
#      aside.
bench-gate:
	@command -v jq >/dev/null || { echo "bench-gate: needs jq"; exit 1; }; \
	$(call smoke_tmp,bench-gate); trap '[ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/zombie-bench -exp T2,F1,D1 -scale 0.05 -parallel 2 \
		-emit-bench $$tmp/bench.json >/dev/null || exit 1; \
	bad=$$(jq -r '.experiments[] | select(.byte_identical != true) | .id' $$tmp/bench.json); \
	if [ -n "$$bad" ]; then \
		echo "bench-gate: parallel output not byte-identical to sequential for: $$bad"; \
		cat $$tmp/bench.json; exit 1; \
	fi; \
	regressed=$$(jq -r --slurpfile base BENCH_baseline.json ' \
		.phase_timing.phase_ms as $$n | $$base[0].phase_timing.phase_ms as $$b | \
		([$$n[]] | add) as $$nt | ([$$b[]] | add) as $$bt | \
		$$n | to_entries[] | .key as $$k | \
		(.value / $$nt) as $$ns | (($$b[$$k] // 0) / $$bt) as $$bs | \
		select($$ns > $$bs * 1.10 + 0.03) | \
		"  \($$k): baseline share \($$bs * 100 | round)%, now \($$ns * 100 | round)%"' \
		$$tmp/bench.json); \
	if [ -n "$$regressed" ]; then \
		echo "bench-gate: phase share regressed >10% vs BENCH_baseline.json:"; \
		echo "$$regressed"; exit 1; \
	fi; \
	identical=$$(jq -r '.tracing.byte_identical' $$tmp/bench.json); \
	overhead=$$(jq -r '.tracing.overhead // 0' $$tmp/bench.json); \
	[ "$$identical" = true ] || { echo "bench-gate: traced reference run diverged from untraced"; \
		jq .tracing $$tmp/bench.json; exit 1; }; \
	if ! awk -v o="$$overhead" 'BEGIN{exit !(o > 0 && o < 1.05)}'; then \
		echo "bench-gate: tracer overhead $$overhead over threshold, re-measuring once"; \
		$(GO) run ./cmd/zombie-bench -exp T1 -scale 0.05 -parallel 2 \
			-emit-bench $$tmp/bench-retry.json >/dev/null || exit 1; \
		identical=$$(jq -r '.tracing.byte_identical' $$tmp/bench-retry.json); \
		overhead=$$(jq -r '.tracing.overhead // 0' $$tmp/bench-retry.json); \
		[ "$$identical" = true ] || { echo "bench-gate: traced reference run diverged from untraced"; \
			jq .tracing $$tmp/bench-retry.json; exit 1; }; \
	fi; \
	awk -v o="$$overhead" 'BEGIN{exit !(o > 0 && o < 1.05)}' || \
		{ echo "bench-gate: span tracer wall overhead $$overhead breaches the <5% contract"; \
		exit 1; }; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	for s in 0 1 4; do \
		$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 -shards $$s 2>/dev/null \
			| grep -v '^built \|^dist:\|^cache:' > $$tmp/shards$$s.out || exit 1; \
	done; \
	for s in 1 4; do \
		if ! cmp -s $$tmp/shards0.out $$tmp/shards$$s.out; then \
			echo "bench-gate: -shards $$s output diverged from single-process"; \
			diff $$tmp/shards0.out $$tmp/shards$$s.out; exit 1; \
		fi; \
	done; \
	echo "bench-gate OK: T2/F1/D1 byte-identical at parallel=2, phase shares within 10% of baseline, tracer overhead $$overhead, shards {1,4} == single-process"

# dist-smoke proves the distributed determinism contract against real
# processes and real sockets: a coordinator zombie-serve fronting two
# worker zombie-serve processes over loopback HTTP must produce a
# learning curve byte-identical to its own single-process run of the
# same spec, and the run must report the http transport with both
# workers executing. Needs curl + jq (standard on CI images).
dist-smoke:
	@command -v curl >/dev/null && command -v jq >/dev/null || { echo "dist-smoke: needs curl and jq"; exit 1; }; \
	$(call smoke_tmp,dist-smoke); pids=; trap 'kill $$pids 2>/dev/null; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	cport=$$(( $(SMOKE_PORT_BASE) + 18 )); wport1=$$(( $(SMOKE_PORT_BASE) + 19 )); wport2=$$(( $(SMOKE_PORT_BASE) + 20 )); \
	base=http://127.0.0.1:$$cport; w1=http://127.0.0.1:$$wport1; w2=http://127.0.0.1:$$wport2; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) build -ldflags "$(LDFLAGS)" -o $$tmp/zombie-serve ./cmd/zombie-serve && \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$wport1 -corpus wiki=$$tmp/wiki.jsonl >$$tmp/w1.log 2>&1 & pids="$$pids $$!"; }; \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$wport2 -corpus wiki=$$tmp/wiki.jsonl >$$tmp/w2.log 2>&1 & pids="$$pids $$!"; }; \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$cport -corpus wiki=$$tmp/wiki.jsonl \
		-dist-workers $$w1,$$w2 >$$tmp/coord.log 2>&1 & pids="$$pids $$!"; }; \
	for b in $$base $$w1 $$w2; do \
		up=0; for i in $$(seq 1 50); do curl -sf $$b/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
		[ $$up = 1 ] || { echo "dist-smoke: $$b never came up"; cat $$tmp/*.log; exit 1; }; \
	done; \
	spec='{"corpus":"wiki","task":"wiki","max_inputs":150,"eval_every":25,"seed":9}'; \
	dspec='{"corpus":"wiki","task":"wiki","max_inputs":150,"eval_every":25,"seed":9,"shards":2}'; \
	id1=$$(curl -sf -X POST $$base/runs -d "$$spec" | jq -r '.id // empty'); \
	id2=$$(curl -sf -X POST $$base/runs -d "$$dspec" | jq -r '.id // empty'); \
	[ -n "$$id1" ] && [ -n "$$id2" ] || { echo "dist-smoke: run submission failed"; cat $$tmp/coord.log; exit 1; }; \
	for id in $$id1 $$id2; do \
		state=; for i in $$(seq 1 300); do \
			state=$$(curl -sf $$base/runs/$$id | jq -r .state); \
			case $$state in done|failed|cancelled) break;; esac; sleep 0.1; \
		done; \
		[ "$$state" = done ] || { echo "dist-smoke: run $$id ended in state $$state"; \
			curl -s $$base/runs/$$id; cat $$tmp/coord.log; exit 1; }; \
	done; \
	curl -sf $$base/runs/$$id2 > $$tmp/dist.info; \
	transport=$$(jq -r '.transport // empty' $$tmp/dist.info); \
	nworkers=$$(jq '.workers | length' $$tmp/dist.info); \
	busy=$$(jq '[.workers[] | select(.steps > 0)] | length' $$tmp/dist.info); \
	if [ "$$transport" != http ] || [ "$$nworkers" != 2 ] || [ "$$busy" != 2 ]; then \
		echo "dist-smoke: sharded run reports transport=$$transport workers=$$nworkers busy=$$busy, want http/2/2"; \
		cat $$tmp/dist.info; exit 1; \
	fi; \
	curl -sf $$base/runs/$$id1/curve | jq .curve > $$tmp/single.curve && \
	curl -sf $$base/runs/$$id2/curve | jq .curve > $$tmp/dist.curve && \
	if ! cmp -s $$tmp/single.curve $$tmp/dist.curve; then \
		echo "dist-smoke: sharded curve diverged from single-process"; \
		diff $$tmp/single.curve $$tmp/dist.curve; exit 1; \
	fi; \
	steps=$$(jq '[.workers[].steps] | add' $$tmp/dist.info); \
	echo "dist-smoke OK: http transport over 2 workers, $$steps worker steps, curve identical to single-process"

# batch-smoke proves the batched inner loop's contracts end to end through
# the CLI: -batch 1 must be byte-identical to the default per-step loop, a
# -batch 8 run must replay byte-identically, and the same K=8 run sharded
# over 2 in-process dist workers (the StepBatch RPC path) must match the
# single-process K=8 run — the wall-clock (built:), per-worker (dist:),
# and cache counter lines aside.
batch-smoke:
	@$(call smoke_tmp,batch-smoke); trap '[ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 2>/dev/null \
		| grep -v '^built \|^dist:\|^cache:' > $$tmp/default.out && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 -batch 1 2>/dev/null \
		| grep -v '^built \|^dist:\|^cache:' > $$tmp/k1.out && \
	if ! cmp -s $$tmp/default.out $$tmp/k1.out; then \
		echo "batch-smoke: -batch 1 diverged from the default loop"; \
		diff $$tmp/default.out $$tmp/k1.out; exit 1; \
	fi && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 -batch 8 2>/dev/null \
		| grep -v '^built \|^dist:\|^cache:' > $$tmp/k8a.out && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 -batch 8 2>/dev/null \
		| grep -v '^built \|^dist:\|^cache:' > $$tmp/k8b.out && \
	if ! cmp -s $$tmp/k8a.out $$tmp/k8b.out; then \
		echo "batch-smoke: same-seed -batch 8 runs differ"; \
		diff $$tmp/k8a.out $$tmp/k8b.out; exit 1; \
	fi && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -max 200 -batch 8 -shards 2 2>/dev/null \
		| grep -v '^built \|^dist:\|^cache:' > $$tmp/k8s.out && \
	if ! cmp -s $$tmp/k8a.out $$tmp/k8s.out; then \
		echo "batch-smoke: -batch 8 -shards 2 diverged from single-process -batch 8"; \
		diff $$tmp/k8a.out $$tmp/k8s.out; exit 1; \
	fi && \
	echo "batch-smoke OK: K=1 == default, K=8 deterministic, K=8 over 2 shards == single-process"

# crash-smoke proves the durable control plane's resume contract against
# a real process and a real kill -9: a zombie-serve run with -state-dir
# is killed mid-curve, the restarted process re-queues the interrupted
# run from its journal (runs_recovered >= 1 in /metrics, recovered on the
# run itself) and finishes it, and the resumed curve is byte-identical to
# a fresh run of the same spec. The extract:lat fault stretches the run
# so the kill lands mid-flight deterministically; latency faults never
# change results. Needs curl + jq (standard on CI images).
crash-smoke:
	@command -v curl >/dev/null && command -v jq >/dev/null || { echo "crash-smoke: needs curl and jq"; exit 1; }; \
	$(call smoke_tmp,crash-smoke); pid=; trap 'kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	port=$$(( $(SMOKE_PORT_BASE) + 38 )); base=http://127.0.0.1:$$port; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) build -ldflags "$(LDFLAGS)" -o $$tmp/zombie-serve ./cmd/zombie-serve && \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$port -corpus wiki=$$tmp/wiki.jsonl -state-dir $$tmp/state -log-format json >$$tmp/serve1.log 2>&1 & pid=$$!; }; \
	up=0; for i in $$(seq 1 50); do curl -sf $$base/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "crash-smoke: server never came up"; cat $$tmp/serve1.log; exit 1; }; \
	spec='{"corpus":"wiki","task":"wiki","max_inputs":400,"eval_every":10,"faults":"extract:lat=5ms","fault_seed":7}'; \
	id=$$(curl -sf -X POST $$base/runs -d "$$spec" | jq -r '.id // empty'); \
	[ -n "$$id" ] || { echo "crash-smoke: run submission failed"; cat $$tmp/serve1.log; exit 1; }; \
	mid=0; state=; pts=0; for i in $$(seq 1 400); do \
		info=$$(curl -sf $$base/runs/$$id); \
		state=$$(echo "$$info" | jq -r .state); pts=$$(echo "$$info" | jq -r '.curve_points // 0'); \
		if [ "$$state" = running ] && [ "$$pts" -ge 2 ]; then mid=1; break; fi; \
		case $$state in done|failed|cancelled) break;; esac; sleep 0.05; \
	done; \
	[ $$mid = 1 ] || { echo "crash-smoke: never caught the run mid-curve (state=$$state points=$$pts)"; cat $$tmp/serve1.log; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$port -corpus wiki=$$tmp/wiki.jsonl -state-dir $$tmp/state -log-format json >$$tmp/serve2.log 2>&1 & pid=$$!; }; \
	up=0; for i in $$(seq 1 50); do curl -sf $$base/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
	[ $$up = 1 ] || { echo "crash-smoke: restarted server never came up"; cat $$tmp/serve2.log; exit 1; }; \
	state=; for i in $$(seq 1 600); do \
		state=$$(curl -sf $$base/runs/$$id | jq -r .state); \
		case $$state in done|failed|cancelled) break;; esac; sleep 0.05; \
	done; \
	[ "$$state" = done ] || { echo "crash-smoke: resumed run ended in state $$state"; curl -s $$base/runs/$$id; cat $$tmp/serve2.log; exit 1; }; \
	recov=$$(curl -sf $$base/runs/$$id | jq -r '.recovered // 0'); \
	[ "$$recov" -ge 1 ] || { echo "crash-smoke: resumed run reports recovered=$$recov, want >= 1"; curl -s $$base/runs/$$id; exit 1; }; \
	metric=$$(curl -sf $$base/metrics | jq -r '.runs_recovered // 0'); \
	[ "$$metric" -ge 1 ] || { echo "crash-smoke: /metrics runs_recovered = $$metric, want >= 1"; curl -s $$base/metrics; exit 1; }; \
	ref=$$(curl -sf -X POST $$base/runs -d "$$spec" | jq -r '.id // empty'); \
	[ -n "$$ref" ] || { echo "crash-smoke: reference submission failed"; cat $$tmp/serve2.log; exit 1; }; \
	state=; for i in $$(seq 1 600); do \
		state=$$(curl -sf $$base/runs/$$ref | jq -r .state); \
		case $$state in done|failed|cancelled) break;; esac; sleep 0.05; \
	done; \
	[ "$$state" = done ] || { echo "crash-smoke: reference run ended in state $$state"; curl -s $$base/runs/$$ref; exit 1; }; \
	curl -sf $$base/runs/$$id/curve | jq .curve > $$tmp/resumed.curve && \
	curl -sf $$base/runs/$$ref/curve | jq .curve > $$tmp/reference.curve && \
	if ! cmp -s $$tmp/resumed.curve $$tmp/reference.curve; then \
		echo "crash-smoke: resumed curve diverged from a fresh run of the same spec"; \
		diff $$tmp/resumed.curve $$tmp/reference.curve; exit 1; \
	fi; \
	echo "crash-smoke OK: killed mid-run at $$pts curve points, $$metric run(s) recovered, resumed curve byte-identical to a fresh run"

# trace-smoke proves cross-process span stitching end to end: a live
# coordinator + 2 worker processes run a sharded traced run, and the
# coordinator's /runs/{id}/spans tree must contain the workers' spans
# (worker.step / worker.step_batch / worker.holdout, shipped back over
# HTTP and re-parented via traceparent) strictly underneath the
# coordinator's dist.* rpc spans, which in turn hang off the engine's
# batch spans. Also checks per-shard cost cells and the chrome export.
# Needs curl + jq (standard on CI images).
trace-smoke:
	@command -v curl >/dev/null && command -v jq >/dev/null || { echo "trace-smoke: needs curl and jq"; exit 1; }; \
	$(call smoke_tmp,trace-smoke); pids=; trap 'kill $$pids 2>/dev/null; [ -n "$$keep" ] || rm -rf "$$tmp"' EXIT; \
	cport=$$(( $(SMOKE_PORT_BASE) + 24 )); wport1=$$(( $(SMOKE_PORT_BASE) + 25 )); wport2=$$(( $(SMOKE_PORT_BASE) + 26 )); \
	base=http://127.0.0.1:$$cport; w1=http://127.0.0.1:$$wport1; w2=http://127.0.0.1:$$wport2; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 600 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) build -ldflags "$(LDFLAGS)" -o $$tmp/zombie-serve ./cmd/zombie-serve && \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$wport1 -corpus wiki=$$tmp/wiki.jsonl >$$tmp/w1.log 2>&1 & pids="$$pids $$!"; }; \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$wport2 -corpus wiki=$$tmp/wiki.jsonl >$$tmp/w2.log 2>&1 & pids="$$pids $$!"; }; \
	{ $$tmp/zombie-serve -addr 127.0.0.1:$$cport -corpus wiki=$$tmp/wiki.jsonl \
		-dist-workers $$w1,$$w2 >$$tmp/coord.log 2>&1 & pids="$$pids $$!"; }; \
	for b in $$base $$w1 $$w2; do \
		up=0; for i in $$(seq 1 50); do curl -sf $$b/healthz >/dev/null && { up=1; break; }; sleep 0.1; done; \
		[ $$up = 1 ] || { echo "trace-smoke: $$b never came up"; cat $$tmp/*.log; exit 1; }; \
	done; \
	spec='{"corpus":"wiki","task":"wiki","max_inputs":150,"eval_every":25,"seed":9,"shards":2,"spans":true}'; \
	id=$$(curl -sf -X POST $$base/runs -d "$$spec" | jq -r '.id // empty'); \
	[ -n "$$id" ] || { echo "trace-smoke: run submission failed"; cat $$tmp/coord.log; exit 1; }; \
	state=; for i in $$(seq 1 300); do \
		state=$$(curl -sf $$base/runs/$$id | jq -r .state); \
		case $$state in done|failed|cancelled) break;; esac; sleep 0.1; \
	done; \
	[ "$$state" = done ] || { echo "trace-smoke: run $$id ended in state $$state"; \
		curl -s $$base/runs/$$id; cat $$tmp/coord.log; exit 1; }; \
	curl -sf $$base/runs/$$id/spans > $$tmp/spans.json || { echo "trace-smoke: spans fetch failed"; cat $$tmp/coord.log; exit 1; }; \
	nspans=$$(jq -r .spans $$tmp/spans.json); \
	[ "$$nspans" -gt 0 ] || { echo "trace-smoke: traced run recorded $$nspans spans"; cat $$tmp/spans.json; exit 1; }; \
	wtotal=$$(jq '[.tree[] | .. | objects | select(.name? // "" | startswith("worker."))] | length' $$tmp/spans.json); \
	wstitched=$$(jq '[.tree[] | .. | objects | select(.name? // "" | startswith("dist.")) | .children[]? | select(.name | startswith("worker."))] | length' $$tmp/spans.json); \
	if [ "$$wtotal" -lt 1 ] || [ "$$wstitched" != "$$wtotal" ]; then \
		echo "trace-smoke: $$wstitched of $$wtotal worker spans sit under dist.* rpc spans, want all and >= 1"; \
		jq '.tree[0]' $$tmp/spans.json; exit 1; \
	fi; \
	underbatch=$$(jq '[.tree[] | .. | objects | select(.name? == "batch") | .children[]? | select(.name | startswith("dist."))] | length' $$tmp/spans.json); \
	[ "$$underbatch" -ge 1 ] || { echo "trace-smoke: no dist.* rpc spans under the engine's batch spans"; \
		jq '.tree[0]' $$tmp/spans.json; exit 1; }; \
	nshards=$$(jq '[.cost.cells[] | select(.shard >= 0) | .shard] | unique | length' $$tmp/spans.json); \
	[ "$$nshards" = 2 ] || { echo "trace-smoke: cost cells cover $$nshards shards, want 2"; \
		jq .cost $$tmp/spans.json; exit 1; }; \
	curl -sf "$$base/runs/$$id/spans?format=chrome" | jq -e '.traceEvents | length > 0' >/dev/null \
		|| { echo "trace-smoke: chrome trace export is empty or invalid"; exit 1; }; \
	echo "trace-smoke OK: $$nspans spans, $$wstitched worker spans stitched under coordinator rpc spans, cost cells for 2 shards"

ci: fmt-check vet lint build race cover bench-smoke cache-smoke chaos-smoke obs-smoke session-smoke dist-smoke batch-smoke crash-smoke trace-smoke
