# Development workflow for the zombie repo. `make ci` is the full gate the
# first goroutines in internal/server made meaningful: the race detector
# runs over every package.

GO ?= go

.PHONY: all build test race vet fmt-check bench-smoke cache-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke runs every benchmark exactly once — not for timing, but to
# catch benchmarks that rot (compile errors, panics, fixture drift).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# cache-smoke proves the extraction cache's determinism contract end to
# end: the same workload, cold then warm against one -cache-dir, must emit
# byte-identical output (the cache: counter line aside) and the warm run
# must actually serve hits.
cache-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/zombie-datagen -task wiki -n 800 -out $$tmp/wiki.jsonl >/dev/null && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 -cache-dir $$tmp/cache > $$tmp/cold.out && \
	$(GO) run ./cmd/zombie -corpus $$tmp/wiki.jsonl -task wiki -mode scan-sequential -max 400 -cache-dir $$tmp/cache > $$tmp/warm.out && \
	grep -v '^cache:' $$tmp/cold.out > $$tmp/cold.cmp && \
	grep -v '^cache:' $$tmp/warm.out > $$tmp/warm.cmp && \
	if ! cmp -s $$tmp/cold.cmp $$tmp/warm.cmp; then \
		echo "cache-smoke: cold and warm outputs differ"; \
		diff $$tmp/cold.cmp $$tmp/warm.cmp; exit 1; \
	fi && \
	if ! grep -q '^cache: hits=[1-9]' $$tmp/warm.out; then \
		echo "cache-smoke: warm run served no cache hits"; \
		grep '^cache:' $$tmp/warm.out; exit 1; \
	fi && \
	echo "cache-smoke OK: $$(grep '^cache:' $$tmp/warm.out)"

ci: fmt-check vet build race bench-smoke cache-smoke
