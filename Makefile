# Development workflow for the zombie repo. `make ci` is the full gate the
# first goroutines in internal/server made meaningful: the race detector
# runs over every package.

GO ?= go

.PHONY: all build test race vet fmt-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race
