# Development workflow for the zombie repo. `make ci` is the full gate the
# first goroutines in internal/server made meaningful: the race detector
# runs over every package.

GO ?= go

.PHONY: all build test race vet fmt-check bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke runs every benchmark exactly once — not for timing, but to
# catch benchmarks that rot (compile errors, panics, fixture drift).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

ci: fmt-check vet build race bench-smoke
